//! Walk corpora and deterministic parallel generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A collection of sampled paths over *local* node indices of whatever
/// structure produced them (a view, a paired-subview, or the global
/// network).
#[derive(Clone, Debug, Default)]
pub struct WalkCorpus {
    walks: Vec<Vec<u32>>,
}

impl WalkCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap existing walks.
    pub fn from_walks(walks: Vec<Vec<u32>>) -> Self {
        WalkCorpus { walks }
    }

    /// Append a walk (walks of length < 2 carry no skip-gram signal and are
    /// silently dropped).
    pub fn push(&mut self, walk: Vec<u32>) {
        if walk.len() >= 2 {
            self.walks.push(walk);
        }
    }

    /// Number of stored walks.
    pub fn len(&self) -> usize {
        self.walks.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.walks.is_empty()
    }

    /// The stored walks.
    pub fn walks(&self) -> &[Vec<u32>] {
        &self.walks
    }

    /// Total number of node occurrences.
    pub fn total_tokens(&self) -> usize {
        self.walks.iter().map(Vec::len).sum()
    }

    /// Occurrence count per node id (length = `num_nodes`), the unigram
    /// statistics used by negative-sampling tables.
    pub fn node_frequencies(&self, num_nodes: usize) -> Vec<u64> {
        let mut freq = vec![0u64; num_nodes];
        for w in &self.walks {
            for &n in w {
                freq[n as usize] += 1;
            }
        }
        freq
    }

    /// Merge another corpus into this one.
    pub fn extend(&mut self, other: WalkCorpus) {
        self.walks.extend(other.walks);
    }
}

/// Generate a corpus by fanning `tasks` out over `threads` workers, each
/// worker running `gen(task, rng)` with an RNG seeded as
/// `seed ⊕ task-index` — deterministic for a fixed seed regardless of
/// thread count or scheduling.
///
/// `tasks` are typically `(start_node, n_walks)` pairs.
pub fn parallel_generate<T, F>(tasks: &[T], threads: usize, seed: u64, gen: F) -> WalkCorpus
where
    T: Sync,
    F: Fn(&T, &mut StdRng) -> Vec<Vec<u32>> + Sync,
{
    let threads = threads.max(1);
    if tasks.is_empty() {
        return WalkCorpus::new();
    }
    // Deterministic partition: task i is owned by shard i % threads, and
    // each task gets its own RNG stream, so results are stable across
    // thread counts.
    let mut shards: Vec<Vec<Vec<u32>>> = Vec::with_capacity(tasks.len());
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let gen = &gen;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
                let mut idx = t;
                while idx < tasks.len() {
                    let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    local.push((idx, gen(&tasks[idx], &mut rng)));
                    idx += threads;
                }
                local
            }));
        }
        let mut collected: Vec<(usize, Vec<Vec<u32>>)> = Vec::new();
        for h in handles {
            collected.extend(h.join().expect("walk worker panicked"));
        }
        collected.sort_by_key(|(i, _)| *i);
        shards = collected.into_iter().map(|(_, w)| w).collect();
    })
    .expect("walk thread scope failed");

    let mut corpus = WalkCorpus::new();
    for walks in shards {
        for w in walks {
            corpus.push(w);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drops_trivial_walks() {
        let mut c = WalkCorpus::new();
        c.push(vec![1]);
        c.push(vec![]);
        c.push(vec![1, 2]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_tokens(), 2);
    }

    #[test]
    fn node_frequencies_count_occurrences() {
        let c = WalkCorpus::from_walks(vec![vec![0, 1, 0], vec![2, 0]]);
        let f = c.node_frequencies(4);
        assert_eq!(f, vec![3, 1, 1, 0]);
    }

    #[test]
    fn parallel_generation_is_deterministic_across_thread_counts() {
        let tasks: Vec<u32> = (0..37).collect();
        let make = |threads: usize| {
            parallel_generate(&tasks, threads, 123, |&t, rng| {
                use rand::Rng;
                vec![vec![t, rng.random_range(0..100u32)]]
            })
        };
        let a = make(1);
        let b = make(4);
        let c = make(7);
        assert_eq!(a.walks(), b.walks());
        assert_eq!(a.walks(), c.walks());
    }

    #[test]
    fn parallel_generation_empty_tasks() {
        let tasks: Vec<u32> = vec![];
        let c = parallel_generate(&tasks, 4, 0, |_, _| vec![vec![0, 1]]);
        assert!(c.is_empty());
    }

    #[test]
    fn extend_merges() {
        let mut a = WalkCorpus::from_walks(vec![vec![0, 1]]);
        let b = WalkCorpus::from_walks(vec![vec![2, 3]]);
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
