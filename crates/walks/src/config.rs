//! Shared walk configuration.

/// Parameters shared by all walk engines.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Walk length `ρ` (the paper uses 80, §IV-A3).
    pub length: usize,
    /// Minimum walks started from each node (the paper uses 10).
    pub min_walks_per_node: usize,
    /// Maximum walks started from each node (the paper uses 32).
    pub max_walks_per_node: usize,
    /// RNG seed; corpus generation derives per-shard seeds from it, so a
    /// fixed seed gives a bit-identical corpus at any thread count.
    pub seed: u64,
    /// Worker threads for corpus generation.
    pub threads: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            length: 80,
            min_walks_per_node: 10,
            max_walks_per_node: 32,
            seed: 42,
            threads: 4,
        }
    }
}

impl WalkConfig {
    /// The paper's §IV-A3 setting: walks per start node
    /// `max(min(deg, 32), 10)`, biased toward high-degree nodes.
    #[inline]
    pub fn walks_for_degree(&self, degree: usize) -> usize {
        degree
            .min(self.max_walks_per_node)
            .max(self.min_walks_per_node)
    }

    /// A scaled-down configuration for tests.
    pub fn for_tests() -> Self {
        WalkConfig {
            length: 12,
            min_walks_per_node: 2,
            max_walks_per_node: 4,
            seed: 7,
            threads: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_clamp_matches_paper() {
        let c = WalkConfig::default();
        assert_eq!(c.walks_for_degree(1), 10);
        assert_eq!(c.walks_for_degree(10), 10);
        assert_eq!(c.walks_for_degree(20), 20);
        assert_eq!(c.walks_for_degree(32), 32);
        assert_eq!(c.walks_for_degree(500), 32);
    }

    #[test]
    fn defaults_match_paper_section_4a3() {
        let c = WalkConfig::default();
        assert_eq!(c.length, 80);
        assert_eq!(c.min_walks_per_node, 10);
        assert_eq!(c.max_walks_per_node, 32);
    }
}
