//! Episodic walk generation: bounded-memory double buffering.
//!
//! Out-of-core training (DESIGN.md §13) never materializes a monolithic
//! walk corpus. Instead the task list is cut into contiguous **episodes**
//! of ≈ `episode_walks` walks each ([`plan_episodes_into`]), and an
//! [`EpisodeBuffer`] circulates a fixed set of reusable [`WalkCorpus`]
//! arenas between a producer (walk generation via
//! [`crate::corpus::parallel_generate_offset_into`]) and a consumer
//! (SGNS / cross-view training):
//!
//! ```text
//!              free arenas                    full arenas
//!   consumer ──────────────▶ producer ──────────────────▶ consumer
//!      ▲   (bounded channel)    │      (bounded channel)      │
//!      └────────────────────────┴──────── trains episode N ───┘
//!                 while the producer generates episode N+1
//! ```
//!
//! Resident corpus memory is capped at `episodes_in_flight` arenas (two,
//! by default — a classic double buffer) regardless of graph size. Because
//! every task's RNG is seeded by its *global* task index (the same φ64
//! mixing as `parallel_generate`), the concatenation of episode arenas is
//! bit-identical to one monolithic generation for any thread count, any
//! episode size, and any `episodes_in_flight`.

use crate::corpus::WalkCorpus;
use std::ops::Range;

/// How a training run is cut into episodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpisodeConfig {
    /// Target walks per episode. `0` disables episodic mode (the
    /// monolithic corpus path is used).
    pub episode_walks: usize,
    /// Number of episode arenas circulating between producer and
    /// consumer. `1` runs generation and training strictly alternately
    /// (no overlap, single resident arena); `2` is the double buffer.
    pub episodes_in_flight: usize,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        EpisodeConfig {
            episode_walks: 0,
            episodes_in_flight: 2,
        }
    }
}

impl EpisodeConfig {
    /// Whether episodic mode is on (`episode_walks > 0`).
    pub fn enabled(&self) -> bool {
        self.episode_walks > 0
    }

    /// Validate the configuration (used by `SgnsConfig`/`TransNConfig`
    /// validation).
    pub fn validate(&self) -> Result<(), String> {
        if self.episodes_in_flight == 0 {
            return Err("episodes_in_flight must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Cut `num_tasks` tasks into contiguous episode ranges, each covering at
/// least `episode_walks` walks (`walks_per_task(i)` walks for task `i`)
/// except possibly the last. `episode_walks == 0` yields a single episode
/// spanning everything — the monolithic reference. The plan vector is
/// cleared first and reused across epochs (allocation-free once warmed).
pub fn plan_episodes_into(
    plan: &mut Vec<Range<usize>>,
    num_tasks: usize,
    walks_per_task: impl Fn(usize) -> usize,
    episode_walks: usize,
) {
    plan.clear();
    if num_tasks == 0 {
        return;
    }
    if episode_walks == 0 {
        plan.push(0..num_tasks);
        return;
    }
    let mut start = 0;
    let mut walks = 0;
    for i in 0..num_tasks {
        walks += walks_per_task(i);
        if walks >= episode_walks {
            plan.push(start..i + 1);
            start = i + 1;
            walks = 0;
        }
    }
    if start < num_tasks {
        plan.push(start..num_tasks);
    }
}

/// A fixed pool of reusable walk arenas circulating between one producer
/// (generation) and one consumer (training). See the module docs for the
/// lifecycle diagram.
#[derive(Clone, Debug)]
pub struct EpisodeBuffer {
    arenas: Vec<WalkCorpus>,
    peak_heap_bytes: usize,
}

impl EpisodeBuffer {
    /// A buffer of `episodes_in_flight` empty arenas.
    ///
    /// # Panics
    /// Panics if `episodes_in_flight` is 0.
    pub fn new(episodes_in_flight: usize) -> Self {
        assert!(episodes_in_flight >= 1, "episodes_in_flight must be >= 1");
        EpisodeBuffer {
            arenas: (0..episodes_in_flight).map(|_| WalkCorpus::new()).collect(),
            peak_heap_bytes: 0,
        }
    }

    /// Number of arenas in the pool.
    pub fn in_flight(&self) -> usize {
        self.arenas.len()
    }

    /// Current resident corpus bytes: the summed heap reservation of every
    /// arena in the pool.
    pub fn heap_bytes(&self) -> usize {
        self.arenas.iter().map(WalkCorpus::heap_bytes).sum()
    }

    /// Highest resident corpus bytes observed across all [`run`] calls
    /// (sum of each arena's high-water reservation).
    ///
    /// [`run`]: EpisodeBuffer::run
    pub fn peak_heap_bytes(&self) -> usize {
        self.peak_heap_bytes
    }

    /// Shrink every arena's reservation to `token_budget` tokens (see
    /// [`WalkCorpus::shrink_to`]) — call between epochs so a one-off giant
    /// episode cannot pin its high-water allocation forever.
    pub fn shrink_to(&mut self, token_budget: usize) {
        for arena in &mut self.arenas {
            arena.shrink_to(token_budget);
        }
    }

    /// Drive `episodes` through the pipeline: `generate(e, arena)` fills
    /// an arena with episode `e` (it must clear the arena first, as
    /// `parallel_generate_offset_into` does), then `consume(e, arena)`
    /// trains on it. Episodes are always consumed in order `0..episodes`.
    ///
    /// With one arena in flight this is a strict generate→train
    /// alternation on the calling thread — allocation-free once the arena
    /// is warmed. With two or more, a producer thread generates episode
    /// N+1 while the caller consumes episode N, handing arenas over a
    /// bounded channel.
    pub fn run<G, C>(&mut self, episodes: usize, generate: G, mut consume: C)
    where
        G: Fn(usize, &mut WalkCorpus) + Sync,
        C: FnMut(usize, &WalkCorpus),
    {
        if episodes == 0 {
            return;
        }
        if self.arenas.len() == 1 {
            let mut arena = std::mem::take(&mut self.arenas[0]);
            let mut peak = 0;
            for e in 0..episodes {
                generate(e, &mut arena);
                consume(e, &arena);
                peak = peak.max(arena.heap_bytes());
            }
            self.arenas[0] = arena;
            self.peak_heap_bytes = self.peak_heap_bytes.max(peak);
            return;
        }

        let in_flight = self.arenas.len();
        let (free_tx, free_rx) = crossbeam::channel::bounded::<(usize, WalkCorpus)>(in_flight);
        let (full_tx, full_rx) =
            crossbeam::channel::bounded::<(usize, usize, WalkCorpus)>(in_flight);
        for (i, arena) in self.arenas.drain(..).enumerate() {
            free_tx.send((i, arena)).expect("free channel has capacity");
        }
        let mut peaks = vec![0usize; in_flight];
        crossbeam::thread::scope(|scope| {
            let generate = &generate;
            let free_rx = &free_rx;
            let producer = scope.spawn(move |_| {
                for e in 0..episodes {
                    let (i, mut arena) = match free_rx.recv() {
                        Ok(x) => x,
                        Err(_) => break,
                    };
                    generate(e, &mut arena);
                    if full_tx.send((e, i, arena)).is_err() {
                        break;
                    }
                }
            });
            for expected in 0..episodes {
                let (e, i, arena) = full_rx.recv().expect("episode producer died");
                debug_assert_eq!(e, expected, "episodes must arrive in order");
                consume(e, &arena);
                peaks[i] = peaks[i].max(arena.heap_bytes());
                free_tx.send((i, arena)).expect("free channel has capacity");
            }
            producer.join().expect("episode producer panicked");
        })
        .expect("episode thread scope failed");

        // Recover the pool (every arena is back on the free channel).
        let mut recovered: Vec<(usize, WalkCorpus)> = Vec::with_capacity(in_flight);
        while let Ok(pair) = free_rx.try_recv() {
            recovered.push(pair);
        }
        recovered.sort_by_key(|&(i, _)| i);
        debug_assert_eq!(recovered.len(), in_flight);
        for (i, arena) in recovered {
            peaks[i] = peaks[i].max(arena.heap_bytes());
            self.arenas.push(arena);
        }
        self.peak_heap_bytes = self.peak_heap_bytes.max(peaks.iter().sum());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{parallel_generate, parallel_generate_offset_into};

    #[test]
    fn config_default_is_disabled_double_buffer() {
        let cfg = EpisodeConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg.episodes_in_flight, 2);
        assert!(cfg.validate().is_ok());
        assert!(EpisodeConfig {
            episode_walks: 10,
            episodes_in_flight: 0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn plan_covers_all_tasks_in_order() {
        let mut plan = Vec::new();
        // Tasks with 1..=3 walks each.
        let walks = |i: usize| i % 3 + 1;
        plan_episodes_into(&mut plan, 10, walks, 4);
        let mut covered = Vec::new();
        let mut prev_end = 0;
        for r in &plan {
            assert_eq!(r.start, prev_end, "episodes must be contiguous");
            prev_end = r.end;
            covered.extend(r.clone());
        }
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
        // All but the last episode reach the walk target.
        for r in &plan[..plan.len() - 1] {
            let w: usize = r.clone().map(walks).sum();
            assert!(w >= 4, "episode {r:?} has {w} walks");
        }
        // Monolithic plan: one episode.
        plan_episodes_into(&mut plan, 10, walks, 0);
        assert_eq!(plan, vec![0..10]);
        plan_episodes_into(&mut plan, 0, walks, 4);
        assert!(plan.is_empty());
    }

    /// The pipeline (any in-flight count) consumes every episode in order
    /// with exactly the monolithic corpus content.
    #[test]
    fn pipeline_matches_monolithic_for_any_in_flight() {
        use rand::Rng;
        let tasks: Vec<u32> = (0..40).collect();
        let gen = |&t: &u32, rng: &mut rand::rngs::StdRng, out: &mut WalkCorpus| {
            out.push(&[t, rng.random_range(0..100u32), t + 1]);
        };
        let monolithic = parallel_generate(&tasks, 3, 5, gen);
        let mut plan = Vec::new();
        plan_episodes_into(&mut plan, tasks.len(), |_| 1, 7);
        for in_flight in [1usize, 2, 3] {
            let mut buffer = EpisodeBuffer::new(in_flight);
            let mut rebuilt = WalkCorpus::new();
            let mut seen = 0;
            buffer.run(
                plan.len(),
                |e, arena| {
                    let r = plan[e].clone();
                    parallel_generate_offset_into(arena, &tasks[r.clone()], r.start, 2, 5, gen);
                },
                |e, arena| {
                    assert_eq!(e, seen, "in-order consumption");
                    seen += 1;
                    rebuilt.extend_from_arena(arena);
                },
            );
            assert_eq!(seen, plan.len());
            assert_eq!(rebuilt, monolithic, "in_flight {in_flight}");
            assert_eq!(buffer.in_flight(), in_flight);
            assert!(buffer.peak_heap_bytes() >= buffer.heap_bytes() / in_flight.max(1));
        }
    }

    #[test]
    fn warmed_serial_buffer_keeps_capacity_and_shrinks_on_demand() {
        let tasks: Vec<u32> = (0..64).collect();
        let mut buffer = EpisodeBuffer::new(1);
        let run = |buffer: &mut EpisodeBuffer| {
            buffer.run(
                4,
                |e, arena| {
                    let lo = e * 16;
                    parallel_generate_offset_into(
                        arena,
                        &tasks[lo..lo + 16],
                        lo,
                        1,
                        9,
                        |&t, _, out| out.push(&[t, t, t, t]),
                    );
                },
                |_, _| {},
            );
        };
        run(&mut buffer);
        let warmed = buffer.heap_bytes();
        run(&mut buffer);
        assert_eq!(buffer.heap_bytes(), warmed, "steady state must not grow");
        assert_eq!(buffer.peak_heap_bytes(), warmed);
        buffer.shrink_to(8);
        assert!(buffer.heap_bytes() < warmed);
    }
}
