//! Second-order p/q-biased random walks over the type-blind global
//! adjacency — the Node2Vec \[13\] baseline. `p = q = 1` recovers DeepWalk
//! \[33\] (weight-proportional steps).
//!
//! Every interior step of the reference walker re-scans the current
//! node's neighbour list to evaluate the α(prev, next) search bias —
//! O(δ log δ) per step. [`SecondOrderTables`] precomputes one alias table
//! per **arc** (prev → cur), turning the step into an O(1) draw. The
//! precomputed family costs `Σ_arcs δ(dst)` entries (`Σ_v δ(v)²` overall),
//! which explodes on high-degree graphs, so the build takes an optional
//! byte budget: arcs are admitted first-fit in arc order until the budget
//! is spent and the walker falls back to the scan for the rest. The build
//! is sharded-parallel and bit-identical for any thread count (the
//! admitted set is decided serially from sizes alone; per-table
//! construction is independent).

use crate::config::WalkConfig;
use crate::corpus::{parallel_generate_offset_into, WalkCorpus};
use rand::Rng;
use std::ops::Range;
use transn_graph::{build_batch_with, Csr, Parallelism};

/// Arc slot without a precomputed table (outside the byte budget).
const NO_TABLE: u32 = u32::MAX;

/// Precomputed per-arc second-order alias tables.
///
/// The table for arc `prev → cur` is built over `cur`'s neighbour list
/// with weights `w(cur, nb) · α(prev, nb)`; drawing from it consumes RNG
/// differently than the reference scan (an index draw plus an `f32`
/// acceptance draw instead of one `f64`), so table-accelerated walks are a
/// **distinct, opt-in stream** — equally distributed but not bit-equal to
/// scan walks. For a fixed `(p, q, budget)` the walker is still
/// bit-deterministic and thread-count-independent, because the admitted
/// arc set and every table are ([`SecondOrderTables::build_budgeted`]).
#[derive(Clone, Debug)]
pub struct SecondOrderTables {
    /// Arc index → slot in `tables`, or [`NO_TABLE`].
    arc_slot: Vec<u32>,
    tables: Vec<AliasTableVec>,
    table_bytes: usize,
    covered: usize,
}

type AliasTableVec = transn_graph::AliasTable;

impl SecondOrderTables {
    /// Precompute tables for **every** arc (no memory bound). Equivalent
    /// to [`SecondOrderTables::build_budgeted`] with `budget_bytes: None`.
    pub fn build(adj: &Csr, p: f32, q: f32, par: Parallelism) -> Self {
        Self::build_budgeted(adj, p, q, None, par)
    }

    /// Precompute tables for arcs admitted **first-fit in arc order**
    /// under `budget_bytes` (8 bytes per outcome: one `f32` probability +
    /// one `u32` alias). `None` admits everything. The admission pass is a
    /// serial O(arcs) size scan — no float math, no RNG — so the admitted
    /// set is a pure function of the adjacency and the budget; table
    /// construction then fans out over contiguous shards
    /// ([`build_batch_with`]) and is bit-identical for every `par`.
    pub fn build_budgeted(
        adj: &Csr,
        p: f32,
        q: f32,
        budget_bytes: Option<usize>,
        par: Parallelism,
    ) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        let n = adj.num_nodes();
        let num_arcs = adj.num_arcs();
        let mut arc_slot = vec![NO_TABLE; num_arcs];
        // Admission: walk arcs in order, first-fit against the budget.
        // An arc's table has one outcome per neighbour of its destination.
        let mut admitted: Vec<(u32, u32)> = Vec::new(); // (prev, cur)
        let mut spent = 0usize;
        let budget = budget_bytes.unwrap_or(usize::MAX);
        let mut arc = 0usize; // arcs are node-major in neighbour order
        for prev in 0..n {
            for &cur in adj.neighbors(prev) {
                let deg = adj.degree(cur as usize);
                let cost = deg * 8;
                if deg > 0 && spent + cost <= budget {
                    // First-fit: an oversized table is skipped but later,
                    // smaller ones may still be admitted.
                    spent += cost;
                    arc_slot[arc] = admitted.len() as u32;
                    admitted.push((prev as u32, cur));
                }
                arc += 1;
            }
        }
        let covered = admitted.len();
        let tables = build_batch_with(
            covered,
            |i| {
                let (prev, cur) = admitted[i];
                let nbs = adj.neighbors(cur as usize);
                let ws = adj.weights(cur as usize);
                nbs.iter()
                    .zip(ws)
                    .map(|(&nb, &w)| {
                        let alpha = if nb == prev {
                            1.0 / p
                        } else if adj.contains(prev as usize, nb) {
                            1.0
                        } else {
                            1.0 / q
                        };
                        w * alpha
                    })
                    .collect::<Vec<f32>>()
            },
            par,
        );
        let table_bytes: usize = tables.iter().map(|t| t.heap_bytes()).sum();
        SecondOrderTables {
            arc_slot,
            tables,
            table_bytes,
            covered,
        }
    }

    /// The table for CSR arc index `arc`, if it was admitted.
    #[inline]
    pub fn table(&self, arc: usize) -> Option<&AliasTableVec> {
        match self.arc_slot[arc] {
            NO_TABLE => None,
            slot => Some(&self.tables[slot as usize]),
        }
    }

    /// `(covered arcs, total arcs)` — how much of the adjacency has O(1)
    /// steps.
    pub fn coverage(&self) -> (usize, usize) {
        (self.covered, self.arc_slot.len())
    }

    /// Heap bytes held by the table family (tables plus the arc-slot map).
    pub fn heap_bytes(&self) -> usize {
        self.table_bytes + self.arc_slot.capacity() * std::mem::size_of::<u32>()
    }
}

/// Node2Vec walker over an arbitrary CSR adjacency (global node ids).
#[derive(Clone, Copy, Debug)]
pub struct Node2VecWalker<'a> {
    adj: &'a Csr,
    /// Return parameter `p`: likelihood of revisiting the previous node is
    /// scaled by `1/p`.
    pub p: f32,
    /// In-out parameter `q`: moving to a node not adjacent to the previous
    /// node is scaled by `1/q`.
    pub q: f32,
    cfg: WalkConfig,
    /// Opt-in precomputed second-order tables (O(1) interior steps).
    tables: Option<&'a SecondOrderTables>,
}

impl<'a> Node2VecWalker<'a> {
    /// Walker with the given bias parameters.
    pub fn new(adj: &'a Csr, p: f32, q: f32, cfg: WalkConfig) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Node2VecWalker {
            adj,
            p,
            q,
            cfg,
            tables: None,
        }
    }

    /// A DeepWalk-style walker (`p = q = 1`).
    pub fn deepwalk(adj: &'a Csr, cfg: WalkConfig) -> Self {
        Self::new(adj, 1.0, 1.0, cfg)
    }

    /// Use precomputed second-order tables for interior steps. The tables
    /// must have been built from the same adjacency with the same `(p, q)`
    /// — debug-asserted by size. Walks drawn through tables are equally
    /// distributed but not bit-equal to scan walks (different RNG
    /// consumption); see [`SecondOrderTables`].
    pub fn with_tables(mut self, tables: &'a SecondOrderTables) -> Self {
        debug_assert_eq!(tables.arc_slot.len(), self.adj.num_arcs());
        self.tables = Some(tables);
        self
    }

    /// One walk from `start`.
    pub fn walk_from<R: Rng + ?Sized>(&self, start: u32, rng: &mut R) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.length);
        self.walk_into(start, rng, &mut walk);
        walk
    }

    /// Append one p/q-biased walk from `start` to `out` (the
    /// allocation-free kernel behind [`Node2VecWalker::walk_from`]; `out`
    /// is typically the tail of a [`WalkCorpus`] token arena via
    /// [`WalkCorpus::push_with`]).
    pub fn walk_into<R: Rng + ?Sized>(&self, start: u32, rng: &mut R, out: &mut Vec<u32>) {
        let base = out.len();
        out.push(start);
        let mut prev: Option<u32> = None;
        let mut cur = start;
        while out.len() - base < self.cfg.length {
            let next = match prev {
                None => match self.adj.sample_neighbor(cur as usize, rng) {
                    Some(n) => n,
                    None => break,
                },
                Some(p) => match self.biased_step(p, cur, rng) {
                    Some(n) => n,
                    None => break,
                },
            };
            out.push(next);
            prev = Some(cur);
            cur = next;
        }
    }

    /// Second-order step: weight × node2vec search bias α(prev, next).
    fn biased_step<R: Rng + ?Sized>(&self, prev: u32, cur: u32, rng: &mut R) -> Option<u32> {
        let nbs = self.adj.neighbors(cur as usize);
        if nbs.is_empty() {
            return None;
        }
        if let Some(tables) = self.tables {
            if let Some(arc) = self.adj.arc_index(prev as usize, cur) {
                if let Some(table) = tables.table(arc) {
                    return Some(nbs[table.sample(rng) as usize]);
                }
            }
        }
        let ws = self.adj.weights(cur as usize);
        let mut total = 0.0f64;
        let alpha = |nb: u32| -> f32 {
            if nb == prev {
                1.0 / self.p
            } else if self.adj.contains(prev as usize, nb) {
                1.0
            } else {
                1.0 / self.q
            }
        };
        for (&nb, &w) in nbs.iter().zip(ws) {
            total += (w * alpha(nb)) as f64;
        }
        let x = rng.random::<f64>() * total;
        let mut acc = 0.0f64;
        for (&nb, &w) in nbs.iter().zip(ws) {
            acc += (w * alpha(nb)) as f64;
            if x < acc {
                return Some(nb);
            }
        }
        nbs.last().copied()
    }

    /// Generate `walks_per_node` walks from every non-isolated node.
    pub fn generate(&self, walks_per_node: usize) -> WalkCorpus {
        let mut corpus = WalkCorpus::new();
        self.generate_into(walks_per_node, &mut corpus);
        corpus
    }

    /// [`Node2VecWalker::generate`] into a caller-owned corpus (cleared
    /// first, capacity retained across epochs).
    pub fn generate_into(&self, walks_per_node: usize, out: &mut WalkCorpus) {
        let tasks = self.walk_tasks();
        self.generate_task_range_into(&tasks, 0..tasks.len(), walks_per_node, out);
    }

    /// The per-start task list: every non-isolated node, each starting
    /// `walks_per_node` walks. Build once and reuse across epochs /
    /// episode ranges.
    pub fn walk_tasks(&self) -> Vec<u32> {
        (0..self.adj.num_nodes() as u32)
            .filter(|&n| self.adj.degree(n as usize) > 0)
            .collect()
    }

    /// Episodic generation: run only tasks `range` of the full list, each
    /// RNG seeded by its **global** task index, so concatenating episode
    /// ranges in order is bit-identical to one monolithic generation
    /// (DESIGN.md §13).
    pub fn generate_task_range_into(
        &self,
        tasks: &[u32],
        range: Range<usize>,
        walks_per_node: usize,
        out: &mut WalkCorpus,
    ) {
        parallel_generate_offset_into(
            out,
            &tasks[range.clone()],
            range.start,
            self.cfg.threads,
            self.cfg.seed,
            |&n, rng, out| {
                for _ in 0..walks_per_node {
                    out.push_with(|buf| self.walk_into(n, rng, buf));
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Triangle 0-1-2 plus a pendant 3 attached to 1.
    fn lollipop() -> Csr {
        Csr::from_undirected(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (1, 3, 1.0)])
    }

    /// Empirical distribution of the step 0 → 1 → ?.
    fn step_fracs(p: f32, q: f32) -> [f64; 4] {
        let adj = lollipop();
        let w = Node2VecWalker::new(&adj, p, q, WalkConfig::for_tests());
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            let next = w.biased_step(0, 1, &mut rng).unwrap();
            counts[next as usize] += 1;
        }
        counts.map(|c| c as f64 / n as f64)
    }

    #[test]
    fn low_p_returns_home() {
        // p = 0.1: α(0) = 10 vs α(2) = 1 (triangle) vs α(3) = 1/q = 1.
        let f = step_fracs(0.1, 1.0);
        assert!(f[0] > 0.7, "return frac {}", f[0]);
    }

    #[test]
    fn high_q_stays_local() {
        // q = 10: the pendant 3 (not adjacent to 0) gets α = 0.1;
        // node 2 (adjacent to 0) keeps α = 1.
        let f = step_fracs(1.0, 10.0);
        assert!(f[2] > 3.0 * f[3], "local {} vs outward {}", f[2], f[3]);
    }

    #[test]
    fn unit_pq_matches_weight_proportional() {
        let f = step_fracs(1.0, 1.0);
        for target in [0, 2, 3] {
            assert!(
                (f[target] - 1.0 / 3.0).abs() < 0.02,
                "f[{target}] = {}",
                f[target]
            );
        }
    }

    #[test]
    fn deepwalk_constructor_sets_unit_params() {
        let adj = lollipop();
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        assert_eq!(w.p, 1.0);
        assert_eq!(w.q, 1.0);
    }

    #[test]
    fn isolated_nodes_get_no_walks() {
        let adj = Csr::from_undirected(3, [(0, 1, 1.0)]);
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        let corpus = w.generate(2);
        assert_eq!(corpus.len(), 4); // 2 nodes × 2 walks
        for walk in corpus.iter() {
            assert_ne!(walk[0], 2);
        }
    }

    #[test]
    fn episode_ranges_concatenate_to_monolithic() {
        let adj = lollipop();
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        let mono = w.generate(3);
        let tasks = w.walk_tasks();
        let mut episodic = WalkCorpus::new();
        let mut arena = WalkCorpus::new();
        for i in 0..tasks.len() {
            w.generate_task_range_into(&tasks, i..i + 1, 3, &mut arena);
            episodic.extend_from_arena(&arena);
        }
        assert_eq!(episodic, mono);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_p_rejected() {
        let adj = lollipop();
        let _ = Node2VecWalker::new(&adj, 0.0, 1.0, WalkConfig::for_tests());
    }

    /// Empirical step distribution 0 → 1 → ? through precomputed tables.
    fn step_fracs_tabled(p: f32, q: f32, budget: Option<usize>) -> [f64; 4] {
        let adj = lollipop();
        let tables = SecondOrderTables::build_budgeted(&adj, p, q, budget, Parallelism::single());
        let w = Node2VecWalker::new(&adj, p, q, WalkConfig::for_tests()).with_tables(&tables);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            let next = w.biased_step(0, 1, &mut rng).unwrap();
            counts[next as usize] += 1;
        }
        counts.map(|c| c as f64 / n as f64)
    }

    #[test]
    fn tables_reproduce_scan_distribution() {
        let scan = step_fracs(0.1, 10.0);
        let tabled = step_fracs_tabled(0.1, 10.0, None);
        for (s, t) in scan.iter().zip(tabled) {
            assert!((s - t).abs() < 0.02, "scan {s} vs tabled {t}");
        }
    }

    #[test]
    fn zero_budget_falls_back_to_scan_stream() {
        // With no admitted tables the walker must consume RNG exactly like
        // the plain scan — bit-identical walks.
        let adj = lollipop();
        let tables =
            SecondOrderTables::build_budgeted(&adj, 2.0, 0.5, Some(0), Parallelism::single());
        assert_eq!(tables.coverage().0, 0);
        let plain = Node2VecWalker::new(&adj, 2.0, 0.5, WalkConfig::for_tests());
        let tabled = plain.with_tables(&tables);
        assert_eq!(plain.generate(3), tabled.generate(3));
    }

    #[test]
    fn budget_admits_first_fit_and_bounds_bytes() {
        let adj = lollipop();
        let full = SecondOrderTables::build(&adj, 1.0, 1.0, Parallelism::single());
        assert_eq!(full.coverage(), (8, 8)); // every arc covered
                                             // Budget for only a few outcomes: covered < total, bytes bounded.
        let budget = 8 * 4; // four outcomes' worth
        let partial =
            SecondOrderTables::build_budgeted(&adj, 1.0, 1.0, Some(budget), Parallelism::single());
        let (covered, total) = partial.coverage();
        assert!(covered > 0 && covered < total, "covered {covered}/{total}");
        let table_bytes: usize = (0..total)
            .filter_map(|a| partial.table(a))
            .map(|t| t.heap_bytes())
            .sum();
        assert!(table_bytes <= budget, "{table_bytes} > {budget}");
    }

    #[test]
    fn table_build_is_bit_identical_across_thread_counts() {
        // A denser graph so shards actually split work.
        let mut edges = Vec::new();
        for i in 0u32..60 {
            for j in (i + 1)..60 {
                if (i * 7 + j * 13) % 5 == 0 {
                    edges.push((i, j, ((i + j) % 9 + 1) as f32));
                }
            }
        }
        let adj = Csr::from_undirected(60, edges);
        let serial = SecondOrderTables::build(&adj, 0.5, 2.0, Parallelism::single());
        for par in [
            Parallelism::hogwild(2),
            Parallelism::strict(4),
            Parallelism::hogwild(8),
        ] {
            let t = SecondOrderTables::build(&adj, 0.5, 2.0, par);
            assert_eq!(t.coverage(), serial.coverage(), "{par:?}");
            for a in 0..adj.num_arcs() {
                let (x, y) = (t.table(a).unwrap(), serial.table(a).unwrap());
                assert_eq!(
                    x.probs().iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    y.probs().iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                    "{par:?} arc {a}"
                );
                assert_eq!(x.aliases(), y.aliases(), "{par:?} arc {a}");
            }
        }
    }

    #[test]
    fn tabled_walks_are_deterministic_for_fixed_config() {
        let adj = lollipop();
        let tables = SecondOrderTables::build(&adj, 0.25, 4.0, Parallelism::single());
        let w = Node2VecWalker::new(&adj, 0.25, 4.0, WalkConfig::for_tests()).with_tables(&tables);
        assert_eq!(w.generate(3), w.generate(3));
    }
}
