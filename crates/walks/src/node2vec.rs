//! Second-order p/q-biased random walks over the type-blind global
//! adjacency — the Node2Vec \[13\] baseline. `p = q = 1` recovers DeepWalk
//! \[33\] (weight-proportional steps).

use crate::config::WalkConfig;
use crate::corpus::{parallel_generate_offset_into, WalkCorpus};
use rand::Rng;
use std::ops::Range;
use transn_graph::Csr;

/// Node2Vec walker over an arbitrary CSR adjacency (global node ids).
#[derive(Clone, Copy, Debug)]
pub struct Node2VecWalker<'a> {
    adj: &'a Csr,
    /// Return parameter `p`: likelihood of revisiting the previous node is
    /// scaled by `1/p`.
    pub p: f32,
    /// In-out parameter `q`: moving to a node not adjacent to the previous
    /// node is scaled by `1/q`.
    pub q: f32,
    cfg: WalkConfig,
}

impl<'a> Node2VecWalker<'a> {
    /// Walker with the given bias parameters.
    pub fn new(adj: &'a Csr, p: f32, q: f32, cfg: WalkConfig) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Node2VecWalker { adj, p, q, cfg }
    }

    /// A DeepWalk-style walker (`p = q = 1`).
    pub fn deepwalk(adj: &'a Csr, cfg: WalkConfig) -> Self {
        Self::new(adj, 1.0, 1.0, cfg)
    }

    /// One walk from `start`.
    pub fn walk_from<R: Rng + ?Sized>(&self, start: u32, rng: &mut R) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.length);
        self.walk_into(start, rng, &mut walk);
        walk
    }

    /// Append one p/q-biased walk from `start` to `out` (the
    /// allocation-free kernel behind [`Node2VecWalker::walk_from`]; `out`
    /// is typically the tail of a [`WalkCorpus`] token arena via
    /// [`WalkCorpus::push_with`]).
    pub fn walk_into<R: Rng + ?Sized>(&self, start: u32, rng: &mut R, out: &mut Vec<u32>) {
        let base = out.len();
        out.push(start);
        let mut prev: Option<u32> = None;
        let mut cur = start;
        while out.len() - base < self.cfg.length {
            let next = match prev {
                None => match self.adj.sample_neighbor(cur as usize, rng) {
                    Some(n) => n,
                    None => break,
                },
                Some(p) => match self.biased_step(p, cur, rng) {
                    Some(n) => n,
                    None => break,
                },
            };
            out.push(next);
            prev = Some(cur);
            cur = next;
        }
    }

    /// Second-order step: weight × node2vec search bias α(prev, next).
    fn biased_step<R: Rng + ?Sized>(&self, prev: u32, cur: u32, rng: &mut R) -> Option<u32> {
        let nbs = self.adj.neighbors(cur as usize);
        if nbs.is_empty() {
            return None;
        }
        let ws = self.adj.weights(cur as usize);
        let mut total = 0.0f64;
        let alpha = |nb: u32| -> f32 {
            if nb == prev {
                1.0 / self.p
            } else if self.adj.contains(prev as usize, nb) {
                1.0
            } else {
                1.0 / self.q
            }
        };
        for (&nb, &w) in nbs.iter().zip(ws) {
            total += (w * alpha(nb)) as f64;
        }
        let x = rng.random::<f64>() * total;
        let mut acc = 0.0f64;
        for (&nb, &w) in nbs.iter().zip(ws) {
            acc += (w * alpha(nb)) as f64;
            if x < acc {
                return Some(nb);
            }
        }
        nbs.last().copied()
    }

    /// Generate `walks_per_node` walks from every non-isolated node.
    pub fn generate(&self, walks_per_node: usize) -> WalkCorpus {
        let mut corpus = WalkCorpus::new();
        self.generate_into(walks_per_node, &mut corpus);
        corpus
    }

    /// [`Node2VecWalker::generate`] into a caller-owned corpus (cleared
    /// first, capacity retained across epochs).
    pub fn generate_into(&self, walks_per_node: usize, out: &mut WalkCorpus) {
        let tasks = self.walk_tasks();
        self.generate_task_range_into(&tasks, 0..tasks.len(), walks_per_node, out);
    }

    /// The per-start task list: every non-isolated node, each starting
    /// `walks_per_node` walks. Build once and reuse across epochs /
    /// episode ranges.
    pub fn walk_tasks(&self) -> Vec<u32> {
        (0..self.adj.num_nodes() as u32)
            .filter(|&n| self.adj.degree(n as usize) > 0)
            .collect()
    }

    /// Episodic generation: run only tasks `range` of the full list, each
    /// RNG seeded by its **global** task index, so concatenating episode
    /// ranges in order is bit-identical to one monolithic generation
    /// (DESIGN.md §13).
    pub fn generate_task_range_into(
        &self,
        tasks: &[u32],
        range: Range<usize>,
        walks_per_node: usize,
        out: &mut WalkCorpus,
    ) {
        parallel_generate_offset_into(
            out,
            &tasks[range.clone()],
            range.start,
            self.cfg.threads,
            self.cfg.seed,
            |&n, rng, out| {
                for _ in 0..walks_per_node {
                    out.push_with(|buf| self.walk_into(n, rng, buf));
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Triangle 0-1-2 plus a pendant 3 attached to 1.
    fn lollipop() -> Csr {
        Csr::from_undirected(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (1, 3, 1.0)])
    }

    /// Empirical distribution of the step 0 → 1 → ?.
    fn step_fracs(p: f32, q: f32) -> [f64; 4] {
        let adj = lollipop();
        let w = Node2VecWalker::new(&adj, p, q, WalkConfig::for_tests());
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            let next = w.biased_step(0, 1, &mut rng).unwrap();
            counts[next as usize] += 1;
        }
        counts.map(|c| c as f64 / n as f64)
    }

    #[test]
    fn low_p_returns_home() {
        // p = 0.1: α(0) = 10 vs α(2) = 1 (triangle) vs α(3) = 1/q = 1.
        let f = step_fracs(0.1, 1.0);
        assert!(f[0] > 0.7, "return frac {}", f[0]);
    }

    #[test]
    fn high_q_stays_local() {
        // q = 10: the pendant 3 (not adjacent to 0) gets α = 0.1;
        // node 2 (adjacent to 0) keeps α = 1.
        let f = step_fracs(1.0, 10.0);
        assert!(f[2] > 3.0 * f[3], "local {} vs outward {}", f[2], f[3]);
    }

    #[test]
    fn unit_pq_matches_weight_proportional() {
        let f = step_fracs(1.0, 1.0);
        for target in [0, 2, 3] {
            assert!(
                (f[target] - 1.0 / 3.0).abs() < 0.02,
                "f[{target}] = {}",
                f[target]
            );
        }
    }

    #[test]
    fn deepwalk_constructor_sets_unit_params() {
        let adj = lollipop();
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        assert_eq!(w.p, 1.0);
        assert_eq!(w.q, 1.0);
    }

    #[test]
    fn isolated_nodes_get_no_walks() {
        let adj = Csr::from_undirected(3, [(0, 1, 1.0)]);
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        let corpus = w.generate(2);
        assert_eq!(corpus.len(), 4); // 2 nodes × 2 walks
        for walk in corpus.iter() {
            assert_ne!(walk[0], 2);
        }
    }

    #[test]
    fn episode_ranges_concatenate_to_monolithic() {
        let adj = lollipop();
        let w = Node2VecWalker::deepwalk(&adj, WalkConfig::for_tests());
        let mono = w.generate(3);
        let tasks = w.walk_tasks();
        let mut episodic = WalkCorpus::new();
        let mut arena = WalkCorpus::new();
        for i in 0..tasks.len() {
            w.generate_task_range_into(&tasks, i..i + 1, 3, &mut arena);
            episodic.extend_from_arena(&arena);
        }
        assert_eq!(episodic, mono);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_p_rejected() {
        let adj = lollipop();
        let _ = Node2VecWalker::new(&adj, 0.0, 1.0, WalkConfig::for_tests());
    }
}
