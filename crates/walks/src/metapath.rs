//! Meta-path-constrained random walks — the Metapath2Vec \[8\] baseline.
//!
//! A meta-path is a cyclic node-type pattern such as `A-P-V-P-A`: from a
//! node whose type matches position `k`, the walk may only move to a
//! neighbour whose type matches position `k + 1`, wrapping around (the
//! first and last types of the pattern must coincide, as in \[8\]).

use crate::config::WalkConfig;
use crate::corpus::{parallel_generate_offset_into, WalkCorpus};
use rand::Rng;
use std::ops::Range;
use transn_graph::{HetNet, NodeId, NodeTypeId};

/// Walker constrained to a cyclic meta-path over the whole network.
#[derive(Clone, Debug)]
pub struct MetapathWalker<'a> {
    net: &'a HetNet,
    /// The pattern, e.g. `[A, P, V, P, A]`. The trailing element equals the
    /// leading one and is dropped internally (the cycle is implicit).
    pattern: Vec<NodeTypeId>,
    cfg: WalkConfig,
}

impl<'a> MetapathWalker<'a> {
    /// Build a walker for a meta-path given as node-type ids.
    ///
    /// # Panics
    /// Panics if the pattern has fewer than 2 positions or does not start
    /// and end with the same type.
    pub fn new(net: &'a HetNet, pattern: Vec<NodeTypeId>, cfg: WalkConfig) -> Self {
        assert!(pattern.len() >= 2, "meta-path needs at least two positions");
        assert_eq!(
            pattern.first(),
            pattern.last(),
            "meta-path must be cyclic (first type == last type)"
        );
        let mut pattern = pattern;
        pattern.pop(); // cycle is implicit
        MetapathWalker { net, pattern, cfg }
    }

    /// Build from type *names*, e.g. `["author", "paper", "venue",
    /// "paper", "author"]`.
    ///
    /// # Panics
    /// Panics on unknown names or an acyclic pattern.
    pub fn from_names(net: &'a HetNet, names: &[&str], cfg: WalkConfig) -> Self {
        let pattern = names
            .iter()
            .map(|n| {
                net.schema()
                    .node_type_by_name(n)
                    .unwrap_or_else(|| panic!("unknown node type {n:?}"))
            })
            .collect();
        Self::new(net, pattern, cfg)
    }

    /// The (cycle-trimmed) pattern.
    pub fn pattern(&self) -> &[NodeTypeId] {
        &self.pattern
    }

    /// One meta-path walk from `start` (global id). The walk ends early if
    /// no neighbour of the required next type exists.
    pub fn walk_from<R: Rng + ?Sized>(&self, start: NodeId, rng: &mut R) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.length);
        self.walk_into(start, rng, &mut walk);
        walk
    }

    /// Append one meta-path walk from `start` to `out` (the
    /// allocation-free kernel behind [`MetapathWalker::walk_from`]; `out`
    /// is typically the tail of a [`WalkCorpus`] token arena via
    /// [`WalkCorpus::push_with`]).
    pub fn walk_into<R: Rng + ?Sized>(&self, start: NodeId, rng: &mut R, out: &mut Vec<u32>) {
        debug_assert_eq!(self.net.node_type(start), self.pattern[0]);
        let adj = self.net.global_adj();
        let base = out.len();
        out.push(start.0);
        let mut cur = start.0;
        let mut pos = 0usize;
        while out.len() - base < self.cfg.length {
            let next_type = self.pattern[(pos + 1) % self.pattern.len()];
            // Weighted choice among neighbours of the required type.
            let nbs = adj.neighbors(cur as usize);
            let ws = adj.weights(cur as usize);
            let mut total = 0.0f64;
            for (&nb, &w) in nbs.iter().zip(ws) {
                if self.net.node_type(NodeId(nb)) == next_type {
                    total += w as f64;
                }
            }
            if total <= 0.0 {
                break;
            }
            let x = rng.random::<f64>() * total;
            let mut acc = 0.0f64;
            let mut chosen = None;
            for (&nb, &w) in nbs.iter().zip(ws) {
                if self.net.node_type(NodeId(nb)) == next_type {
                    acc += w as f64;
                    if x < acc {
                        chosen = Some(nb);
                        break;
                    }
                }
            }
            let next = chosen.unwrap_or_else(|| {
                *nbs.iter()
                    .rev()
                    .find(|&&nb| self.net.node_type(NodeId(nb)) == next_type)
                    .expect("total > 0 implies a typed neighbour exists")
            });
            out.push(next);
            cur = next;
            pos += 1;
        }
    }

    /// Generate `walks_per_node` walks from every node whose type matches
    /// the pattern head.
    pub fn generate(&self, walks_per_node: usize) -> WalkCorpus {
        let mut corpus = WalkCorpus::new();
        self.generate_into(walks_per_node, &mut corpus);
        corpus
    }

    /// [`MetapathWalker::generate`] into a caller-owned corpus (cleared
    /// first, capacity retained across epochs).
    pub fn generate_into(&self, walks_per_node: usize, out: &mut WalkCorpus) {
        let starts = self.walk_tasks();
        self.generate_task_range_into(&starts, 0..starts.len(), walks_per_node, out);
    }

    /// The per-start task list: every node of the pattern's head type,
    /// each starting `walks_per_node` walks. Build once and reuse across
    /// epochs / episode ranges.
    pub fn walk_tasks(&self) -> Vec<NodeId> {
        self.net.nodes_of_type(self.pattern[0]).collect()
    }

    /// Episodic generation: run only tasks `range` of the full list, each
    /// RNG seeded by its **global** task index, so concatenating episode
    /// ranges in order is bit-identical to one monolithic generation
    /// (DESIGN.md §13).
    pub fn generate_task_range_into(
        &self,
        tasks: &[NodeId],
        range: Range<usize>,
        walks_per_node: usize,
        out: &mut WalkCorpus,
    ) {
        parallel_generate_offset_into(
            out,
            &tasks[range.clone()],
            range.start,
            self.cfg.threads,
            self.cfg.seed,
            |&n, rng, out| {
                for _ in 0..walks_per_node {
                    out.push_with(|buf| self.walk_into(n, rng, buf));
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transn_graph::HetNetBuilder;

    /// Tiny academic network: 2 authors, 2 papers, 1 venue.
    fn academic() -> HetNet {
        let mut b = HetNetBuilder::new();
        let a = b.add_node_type("author");
        let p = b.add_node_type("paper");
        let v = b.add_node_type("venue");
        let ap = b.add_edge_type("writes", a, p);
        let pv = b.add_edge_type("published", p, v);
        let a0 = b.add_node(a);
        let a1 = b.add_node(a);
        let p0 = b.add_node(p);
        let p1 = b.add_node(p);
        let v0 = b.add_node(v);
        b.add_edge(a0, p0, ap, 1.0).unwrap();
        b.add_edge(a1, p1, ap, 1.0).unwrap();
        b.add_edge(a1, p0, ap, 1.0).unwrap();
        b.add_edge(p0, v0, pv, 1.0).unwrap();
        b.add_edge(p1, v0, pv, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn walks_follow_the_pattern() {
        let net = academic();
        let w = MetapathWalker::from_names(
            &net,
            &["author", "paper", "venue", "paper", "author"],
            WalkConfig {
                length: 9,
                ..WalkConfig::for_tests()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let walk = w.walk_from(NodeId(0), &mut rng);
        assert!(walk.len() > 1);
        let expect = ["author", "paper", "venue", "paper"];
        for (i, &n) in walk.iter().enumerate() {
            let t = net.node_type(NodeId(n));
            assert_eq!(
                net.schema().node_type_name(t),
                expect[i % 4],
                "position {i}"
            );
        }
    }

    #[test]
    fn walk_halts_when_no_typed_neighbor() {
        // An author with a paper that has no venue: the A-P-V pattern gets
        // stuck after the paper.
        let mut b = HetNetBuilder::new();
        let a = b.add_node_type("author");
        let p = b.add_node_type("paper");
        let v = b.add_node_type("venue");
        let ap = b.add_edge_type("writes", a, p);
        let _pv = b.add_edge_type("published", p, v);
        let a0 = b.add_node(a);
        let p0 = b.add_node(p);
        let _v0 = b.add_node(v);
        b.add_edge(a0, p0, ap, 1.0).unwrap();
        let net = b.build().unwrap();
        let w = MetapathWalker::from_names(
            &net,
            &["author", "paper", "venue", "paper", "author"],
            WalkConfig::for_tests(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let walk = w.walk_from(NodeId(0), &mut rng);
        assert_eq!(walk, vec![0, 1]);
    }

    #[test]
    fn generate_starts_only_from_head_type() {
        let net = academic();
        let w = MetapathWalker::from_names(
            &net,
            &["author", "paper", "author"],
            WalkConfig::for_tests(),
        );
        let corpus = w.generate(2);
        assert_eq!(corpus.len(), 4); // 2 authors × 2 walks
        let author = net.schema().node_type_by_name("author").unwrap();
        for walk in corpus.iter() {
            assert_eq!(net.node_type(NodeId(walk[0])), author);
        }
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn acyclic_pattern_rejected() {
        let net = academic();
        let _ = MetapathWalker::from_names(&net, &["author", "paper"], WalkConfig::for_tests());
    }

    #[test]
    #[should_panic(expected = "unknown node type")]
    fn unknown_type_rejected() {
        let net = academic();
        let _ = MetapathWalker::from_names(
            &net,
            &["author", "blog", "author"],
            WalkConfig::for_tests(),
        );
    }
}
