//! TransN's biased correlated random walk (§III-A, Equations 4–7).
//!
//! - **Biased starts** (§III-A, §IV-A3): every node starts
//!   `clamp(deg, min, max)` walks, so high-degree nodes are sampled more.
//! - **`π₁` (Eq. 6)**: each step picks a neighbour proportionally to edge
//!   weight.
//! - **`π₂` (Eq. 7)**, heter-views only, from the second step on: the step
//!   probability is additionally multiplied by
//!   `1 − (w(next, cur) − w(cur, prev))/Δ`, preferring edges whose weight
//!   is close to the previous edge's — the "correlated" walk of \[2\]. `Δ`
//!   (Eq. 5) is the weight spread among `cur`'s incident edges; when
//!   `Δ = 0` or on homo-views the walk falls back to `π₁` alone (Eq. 4).

use crate::config::WalkConfig;
use crate::corpus::{parallel_generate_offset_into, WalkCorpus};
use rand::Rng;
use std::ops::Range;
use transn_graph::{View, ViewKind};

/// Walker over a single view (or paired-subview) of a heterogeneous
/// network, implementing Equation (4).
#[derive(Clone, Copy, Debug)]
pub struct CorrelatedWalker<'a> {
    view: &'a View,
    cfg: WalkConfig,
}

impl<'a> CorrelatedWalker<'a> {
    /// Walker over `view` with the given configuration.
    pub fn new(view: &'a View, cfg: WalkConfig) -> Self {
        CorrelatedWalker { view, cfg }
    }

    /// The view being walked.
    pub fn view(&self) -> &'a View {
        self.view
    }

    /// Sample one walk of up to `cfg.length` nodes starting at local node
    /// `start`. The walk ends early only at isolated nodes (which views
    /// never contain, but paired-subview callers may hand in degenerate
    /// structures).
    pub fn walk_from<R: Rng + ?Sized>(&self, start: u32, rng: &mut R) -> Vec<u32> {
        let mut walk = Vec::with_capacity(self.cfg.length);
        self.walk_into(start, rng, &mut walk);
        walk
    }

    /// Append one walk from `start` to `out` (the allocation-free kernel
    /// behind [`CorrelatedWalker::walk_from`]; `out` is typically the tail
    /// of a [`WalkCorpus`] token arena via [`WalkCorpus::push_with`]).
    pub fn walk_into<R: Rng + ?Sized>(&self, start: u32, rng: &mut R, out: &mut Vec<u32>) {
        let base = out.len();
        out.push(start);
        let mut prev: Option<u32> = None;
        let mut cur = start;
        while out.len() - base < self.cfg.length {
            match self.step(prev, cur, rng) {
                Some(next) => {
                    out.push(next);
                    prev = Some(cur);
                    cur = next;
                }
                None => break,
            }
        }
    }

    /// One transition from `cur` given the previous node, per Equation (4).
    pub fn step<R: Rng + ?Sized>(&self, prev: Option<u32>, cur: u32, rng: &mut R) -> Option<u32> {
        let adj = self.view.adj();
        let ci = cur as usize;
        if adj.degree(ci) == 0 {
            return None;
        }
        // Eq. (4) cases: k = 1, homo-view, or Δ = 0 → π₁ only.
        let prev = match (self.view.kind(), prev) {
            (ViewKind::Heter, Some(p)) => p,
            _ => return adj.sample_neighbor(ci, rng),
        };
        let (mn, mx) = adj.weight_min_max(ci).expect("degree checked above");
        let delta = mx - mn; // Eq. (5)
        if delta <= 0.0 {
            return adj.sample_neighbor(ci, rng);
        }
        let w_prev = adj
            .weight_of(ci, prev)
            .expect("previous step must be an incident edge");

        // π(v) ∝ π₁(v)·π₂(v) with π₁ ∝ w(v, cur) and
        // π₂ = 1 − (w(v, cur) − w_prev)/Δ  ∈ [0, 2].
        let nbs = adj.neighbors(ci);
        let ws = adj.weights(ci);
        let mut total = 0.0f64;
        for &w in ws {
            let pi2 = 1.0 - (w - w_prev) / delta;
            total += (w * pi2) as f64;
        }
        debug_assert!(total > 0.0, "π mass vanished (should be impossible)");
        let x = rng.random::<f64>() * total;
        let mut acc = 0.0f64;
        for (&nb, &w) in nbs.iter().zip(ws) {
            let pi2 = 1.0 - (w - w_prev) / delta;
            acc += (w * pi2) as f64;
            if x < acc {
                return Some(nb);
            }
        }
        // Floating-point slack: return the last neighbour.
        nbs.last().copied()
    }

    /// Generate the full corpus for this view: for every node, start
    /// `cfg.walks_for_degree(deg)` walks, in parallel and deterministically
    /// for a fixed seed.
    pub fn generate(&self) -> WalkCorpus {
        let mut corpus = WalkCorpus::new();
        self.generate_into(&mut corpus);
        corpus
    }

    /// [`CorrelatedWalker::generate`] into a caller-owned corpus (cleared
    /// first, capacity retained across epochs).
    pub fn generate_into(&self, out: &mut WalkCorpus) {
        let tasks = self.degree_tasks();
        self.generate_tasks_into(&tasks, out);
    }

    /// The §IV-A3 task list: every node starts `clamp(deg, min, max)`
    /// walks. Building it once and reusing it across epochs (via
    /// [`CorrelatedWalker::generate_tasks_into`]) keeps the warmed
    /// generation loop allocation-free.
    pub fn degree_tasks(&self) -> Vec<(u32, usize)> {
        (0..self.view.num_nodes() as u32)
            .map(|n| (n, self.cfg.walks_for_degree(self.view.degree(n))))
            .collect()
    }

    /// Run prebuilt `(start, n_walks)` tasks into a caller-owned corpus —
    /// the allocation-free core of both `generate*` entry points.
    pub fn generate_tasks_into(&self, tasks: &[(u32, usize)], out: &mut WalkCorpus) {
        self.generate_task_range_into(tasks, 0..tasks.len(), out);
    }

    /// Episodic variant of [`CorrelatedWalker::generate_tasks_into`]: run
    /// only tasks `range` of the full list, each RNG seeded by its
    /// **global** task index, so concatenating episode ranges in order is
    /// bit-identical to one monolithic generation (DESIGN.md §13).
    pub fn generate_task_range_into(
        &self,
        tasks: &[(u32, usize)],
        range: Range<usize>,
        out: &mut WalkCorpus,
    ) {
        parallel_generate_offset_into(
            out,
            &tasks[range.clone()],
            range.start,
            self.cfg.threads,
            self.cfg.seed,
            |&(n, k), rng, out| {
                for _ in 0..k {
                    out.push_with(|buf| self.walk_into(n, rng, buf));
                }
            },
        );
    }

    /// Generate a corpus with exactly `walks_per_node` walks from every
    /// node (used by the cross-view algorithm, which samples `T` path
    /// *pairs* per view-pair rather than degree-scaled counts).
    pub fn generate_uniform(&self, walks_per_node: usize) -> WalkCorpus {
        let tasks: Vec<(u32, usize)> = (0..self.view.num_nodes() as u32)
            .map(|n| (n, walks_per_node))
            .collect();
        let mut corpus = WalkCorpus::new();
        self.generate_tasks_into(&tasks, &mut corpus);
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use transn_graph::{HetNet, HetNetBuilder, NodeId};

    /// The book-rating view of Figure 4: readers R1–R3, books B1–B3,
    /// weights = rating scores.
    fn figure4() -> HetNet {
        let mut b = HetNetBuilder::new();
        let reader = b.add_node_type("reader");
        let book = b.add_node_type("book");
        let rates = b.add_edge_type("rates", reader, book);
        let r: Vec<_> = (0..3).map(|_| b.add_node(reader)).collect();
        let bk: Vec<_> = (0..3).map(|_| b.add_node(book)).collect();
        // R1 reads B1 (4) and B2 (1, dislikes); R2 reads B2 (5, likes) and
        // B3 (2); R3 reads B2 (1, dislikes).
        b.add_edge(r[0], bk[0], rates, 4.0).unwrap();
        b.add_edge(r[0], bk[1], rates, 1.0).unwrap();
        b.add_edge(r[1], bk[1], rates, 5.0).unwrap();
        b.add_edge(r[1], bk[2], rates, 2.0).unwrap();
        b.add_edge(r[2], bk[1], rates, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure4_correlated_step_prefers_similar_rating() {
        // Paper §III-A: a walk at [R1, B2] should select R3 (who also
        // dislikes B2), never R2 (who likes it): π₂(R2) = 0 because
        // w(R2,B2) = 5 = max and w(B2,R1) = 1 = min.
        let net = figure4();
        let views = net.views();
        let v = &views[0];
        let r1 = v.local(NodeId(0)).unwrap();
        let r2 = v.local(NodeId(1)).unwrap();
        let r3 = v.local(NodeId(2)).unwrap();
        let b2 = v.local(NodeId(4)).unwrap();
        let w = CorrelatedWalker::new(v, WalkConfig::for_tests());
        let mut rng = StdRng::seed_from_u64(0);
        let mut saw_r3 = 0;
        for _ in 0..2000 {
            let next = w.step(Some(r1), b2, &mut rng).unwrap();
            assert_ne!(next, r2, "π₂ must forbid the dissimilar reader R2");
            if next == r3 {
                saw_r3 += 1;
            }
        }
        // π(R1) = π(R3) (same weight, same π₂), so roughly half each.
        assert!(
            (saw_r3 as f64 / 2000.0 - 0.5).abs() < 0.05,
            "R3 rate {}",
            saw_r3 as f64 / 2000.0
        );
    }

    #[test]
    fn first_step_uses_pi1_only() {
        // From R2 (edges 5 and 2), π₁ picks B2 with prob 5/7.
        let net = figure4();
        let views = net.views();
        let v = &views[0];
        let r2 = v.local(NodeId(1)).unwrap();
        let b2 = v.local(NodeId(4)).unwrap();
        let w = CorrelatedWalker::new(v, WalkConfig::for_tests());
        let mut rng = StdRng::seed_from_u64(1);
        let mut b2_count = 0;
        let n = 20_000;
        for _ in 0..n {
            if w.step(None, r2, &mut rng) == Some(b2) {
                b2_count += 1;
            }
        }
        let frac = b2_count as f64 / n as f64;
        assert!((frac - 5.0 / 7.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn homo_views_never_use_pi2() {
        // Homo-view with spread weights: the step from `cur` given a
        // previous node must still follow π₁ exactly.
        let mut b = HetNetBuilder::new();
        let t = b.add_node_type("t");
        let e = b.add_edge_type("tt", t, t);
        let n: Vec<_> = (0..4).map(|_| b.add_node(t)).collect();
        b.add_edge(n[0], n[1], e, 1.0).unwrap();
        b.add_edge(n[1], n[2], e, 1.0).unwrap();
        b.add_edge(n[1], n[3], e, 3.0).unwrap();
        let net = b.build().unwrap();
        let views = net.views();
        let v = &views[0];
        let w = CorrelatedWalker::new(v, WalkConfig::for_tests());
        let l1 = v.local(n[1]).unwrap();
        let l0 = v.local(n[0]).unwrap();
        let l3 = v.local(n[3]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut c3 = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if w.step(Some(l0), l1, &mut rng) == Some(l3) {
                c3 += 1;
            }
        }
        // π₁: 3/(1+1+3) = 0.6.
        let frac = c3 as f64 / trials as f64;
        assert!((frac - 0.6).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn walks_have_requested_length() {
        let net = figure4();
        let views = net.views();
        let w = CorrelatedWalker::new(&views[0], WalkConfig::for_tests());
        let mut rng = StdRng::seed_from_u64(3);
        let walk = w.walk_from(0, &mut rng);
        assert_eq!(walk.len(), WalkConfig::for_tests().length);
        // Consecutive nodes must be adjacent.
        for pair in walk.windows(2) {
            assert!(views[0].adj().contains(pair[0] as usize, pair[1]));
        }
    }

    #[test]
    fn corpus_respects_degree_bias() {
        let net = figure4();
        let views = net.views();
        let cfg = WalkConfig {
            length: 5,
            min_walks_per_node: 1,
            max_walks_per_node: 3,
            seed: 4,
            threads: 2,
        };
        let w = CorrelatedWalker::new(&views[0], cfg);
        let corpus = w.generate();
        // Total walks = Σ clamp(deg, 1, 3); degrees: R1=2, R2=2, R3=1,
        // B1=1, B2=3, B3=1 → 2+2+1+1+3+1 = 10.
        assert_eq!(corpus.len(), 10);
        // First node of each walk group matches the start node.
        let mut starts: Vec<u32> = corpus.iter().map(|w| w[0]).collect();
        starts.dedup();
        assert_eq!(starts.len(), views[0].num_nodes());
    }

    #[test]
    fn generate_is_deterministic() {
        let net = figure4();
        let views = net.views();
        let cfg = WalkConfig::for_tests();
        let a = CorrelatedWalker::new(&views[0], cfg).generate();
        let b = CorrelatedWalker::new(&views[0], cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn episode_ranges_concatenate_to_monolithic() {
        let net = figure4();
        let views = net.views();
        let w = CorrelatedWalker::new(&views[0], WalkConfig::for_tests());
        let tasks = w.degree_tasks();
        let mut mono = WalkCorpus::new();
        w.generate_tasks_into(&tasks, &mut mono);
        let mut episodic = WalkCorpus::new();
        let mut arena = WalkCorpus::new();
        let mut base = 0;
        while base < tasks.len() {
            let hi = (base + 2).min(tasks.len());
            w.generate_task_range_into(&tasks, base..hi, &mut arena);
            episodic.extend_from_arena(&arena);
            base = hi;
        }
        assert_eq!(episodic, mono);
    }

    #[test]
    fn generate_uniform_counts() {
        let net = figure4();
        let views = net.views();
        let w = CorrelatedWalker::new(&views[0], WalkConfig::for_tests());
        let corpus = w.generate_uniform(3);
        assert_eq!(corpus.len(), 3 * views[0].num_nodes());
    }
}
