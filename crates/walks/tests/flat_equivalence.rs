//! Flat-arena equivalence (ISSUE 4): for every walk engine, generation
//! into the CSR-style flat corpus must be **bit-identical** to the
//! pre-refactor nested `Vec<Vec<u32>>` pipeline, at any thread count.
//!
//! The nested pipeline is reimplemented here as a serial reference with
//! exactly the semantics the old `parallel_generate` had (commit df0fe66):
//! task `idx` draws from `StdRng::seed_from_u64(seed ^ idx·φ64)`, walks
//! concatenate in task order, and walks of length < 2 are dropped. The
//! engines' `generate*` entry points must reproduce that sequence exactly
//! through `walk_into`/`push_with` for threads ∈ {1, 2, 4, 8}.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use transn_graph::{HetNet, HetNetBuilder, NodeId};
use transn_walks::{
    CorrelatedWalker, MetapathWalker, Node2VecWalker, SimpleWalker, WalkConfig, WalkCorpus,
};

/// The per-task seed-mixing constant (2⁶⁴/φ) both the old and new
/// generation paths use.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// The pre-refactor nested pipeline, serially: per-task RNG streams, task
/// order, length-< 2 drop rule.
fn nested_reference<T>(
    tasks: &[T],
    seed: u64,
    gen: impl Fn(&T, &mut StdRng) -> Vec<Vec<u32>>,
) -> Vec<Vec<u32>> {
    let mut walks = Vec::new();
    for (idx, task) in tasks.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(SEED_MIX));
        for w in gen(task, &mut rng) {
            if w.len() >= 2 {
                walks.push(w);
            }
        }
    }
    walks
}

/// Walk-by-walk, token-by-token comparison of a flat corpus against the
/// nested reference.
fn assert_bit_identical(corpus: &WalkCorpus, reference: &[Vec<u32>], what: &str) {
    assert_eq!(corpus.len(), reference.len(), "{what}: walk count");
    for (w, (got, want)) in corpus.iter().zip(reference).enumerate() {
        assert_eq!(got, &want[..], "{what}: walk {w}");
    }
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Random connected-ish bipartite weighted network (one heter-view, so the
/// correlated walker exercises its π₂ factor).
fn arb_net() -> impl Strategy<Value = HetNet> {
    (
        2usize..8,
        2usize..8,
        proptest::collection::vec((0usize..64, 0usize..64, 1u32..9), 4..40),
    )
        .prop_map(|(na, nb, raw)| {
            let mut b = HetNetBuilder::new();
            let ta = b.add_node_type("a");
            let tb = b.add_node_type("b");
            let e = b.add_edge_type("ab", ta, tb);
            let xs = b.add_nodes(ta, na);
            let ys = b.add_nodes(tb, nb);
            for i in 0..na.max(nb) {
                b.add_edge(xs[i % na], ys[i % nb], e, 1.0).unwrap();
            }
            for (u, v, w) in raw {
                let _ = b.add_edge(xs[u % na], ys[v % nb], e, w as f32);
            }
            b.build().unwrap()
        })
}

proptest! {
    /// Correlated walker: degree-biased corpus, flat == nested reference
    /// for any thread count.
    #[test]
    fn correlated_flat_matches_nested(net in arb_net(), seed in 0u64..1000) {
        let views = net.views();
        let v = &views[0];
        let base = WalkConfig {
            length: 8,
            min_walks_per_node: 1,
            max_walks_per_node: 3,
            seed,
            threads: 1,
        };
        let walker = CorrelatedWalker::new(v, base);
        let tasks: Vec<(u32, usize)> = walker.degree_tasks();
        let reference = nested_reference(&tasks, seed, |&(n, k), rng| {
            (0..k).map(|_| walker.walk_from(n, rng)).collect()
        });
        for threads in THREAD_COUNTS {
            let cfg = WalkConfig { threads, ..base };
            let corpus = CorrelatedWalker::new(v, cfg).generate();
            assert_bit_identical(&corpus, &reference, &format!("correlated t={threads}"));
        }
    }

    /// Simple walker: random starts drawn from the same per-task streams.
    #[test]
    fn simple_flat_matches_nested(net in arb_net(), seed in 0u64..1000) {
        let views = net.views();
        let v = &views[0];
        let base = WalkConfig {
            length: 8,
            min_walks_per_node: 1,
            max_walks_per_node: 3,
            seed,
            threads: 1,
        };
        let walker = SimpleWalker::new(v, base);
        let total_walks: usize = (0..v.num_nodes() as u32)
            .map(|l| base.walks_for_degree(v.degree(l)))
            .sum();
        let tasks: Vec<u32> = (0..total_walks as u32).collect();
        let n = v.num_nodes() as u32;
        let reference = nested_reference(&tasks, seed, |_, rng| {
            use rand::Rng;
            let start = rng.random_range(0..n);
            vec![walker.walk_from(start, rng)]
        });
        for threads in THREAD_COUNTS {
            let cfg = WalkConfig { threads, ..base };
            let corpus = SimpleWalker::new(v, cfg).generate();
            assert_bit_identical(&corpus, &reference, &format!("simple t={threads}"));
        }
    }

    /// Node2Vec walker over the global adjacency.
    #[test]
    fn node2vec_flat_matches_nested(net in arb_net(), seed in 0u64..1000) {
        let adj = net.global_adj();
        let base = WalkConfig { length: 8, seed, threads: 1, ..WalkConfig::for_tests() };
        let walker = Node2VecWalker::new(adj, 0.5, 2.0, base);
        let walks_per_node = 2usize;
        let tasks: Vec<u32> = (0..adj.num_nodes() as u32)
            .filter(|&n| adj.degree(n as usize) > 0)
            .collect();
        let reference = nested_reference(&tasks, seed, |&n, rng| {
            (0..walks_per_node).map(|_| walker.walk_from(n, rng)).collect()
        });
        for threads in THREAD_COUNTS {
            let cfg = WalkConfig { threads, ..base };
            let corpus = Node2VecWalker::new(adj, 0.5, 2.0, cfg).generate(walks_per_node);
            assert_bit_identical(&corpus, &reference, &format!("node2vec t={threads}"));
        }
    }
}

/// Metapath walker on a fixed academic network (needs a typed schema, so
/// no random-net strategy; seeds still sweep).
#[test]
fn metapath_flat_matches_nested() {
    let mut b = HetNetBuilder::new();
    let a = b.add_node_type("author");
    let p = b.add_node_type("paper");
    let v = b.add_node_type("venue");
    let ap = b.add_edge_type("writes", a, p);
    let pv = b.add_edge_type("published", p, v);
    let authors = b.add_nodes(a, 6);
    let papers = b.add_nodes(p, 6);
    let venues = b.add_nodes(v, 2);
    for i in 0..6 {
        b.add_edge(authors[i], papers[i], ap, 1.0).unwrap();
        b.add_edge(authors[i], papers[(i + 1) % 6], ap, 2.0)
            .unwrap();
        b.add_edge(papers[i], venues[i % 2], pv, 1.0).unwrap();
    }
    let net = b.build().unwrap();
    let head = net.schema().node_type_by_name("author").unwrap();
    for seed in [0u64, 7, 42, 1234] {
        let base = WalkConfig {
            length: 9,
            seed,
            threads: 1,
            ..WalkConfig::for_tests()
        };
        let walker = MetapathWalker::from_names(
            &net,
            &["author", "paper", "venue", "paper", "author"],
            base,
        );
        let walks_per_node = 3usize;
        let starts: Vec<NodeId> = net.nodes_of_type(head).collect();
        let reference = nested_reference(&starts, seed, |&n, rng| {
            (0..walks_per_node)
                .map(|_| walker.walk_from(n, rng))
                .collect()
        });
        for threads in THREAD_COUNTS {
            let cfg = WalkConfig { threads, ..base };
            let corpus = MetapathWalker::from_names(
                &net,
                &["author", "paper", "venue", "paper", "author"],
                cfg,
            )
            .generate(walks_per_node);
            assert_bit_identical(
                &corpus,
                &reference,
                &format!("metapath seed={seed} t={threads}"),
            );
        }
    }
}

/// `from_walks` round-trip: the source-compat constructor flattens nested
/// walks into the identical token sequence.
#[test]
fn from_walks_round_trips_nested_content() {
    let nested = vec![vec![3u32, 1, 4], vec![1, 5], vec![9, 2, 6, 5], vec![42]];
    let corpus = WalkCorpus::from_walks(nested.clone());
    assert_eq!(corpus.len(), nested.len());
    for (got, want) in corpus.iter().zip(&nested) {
        assert_eq!(got, &want[..]);
    }
    assert_eq!(
        corpus.total_tokens(),
        nested.iter().map(Vec::len).sum::<usize>()
    );
}
