//! Property tests for the walk engines: every emitted step must traverse a
//! real edge, and walk budgets must match their specifications.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use transn_graph::{HetNetBuilder, NodeId};
use transn_walks::{CorrelatedWalker, Node2VecWalker, SimpleWalker, WalkConfig};

/// Random connected-ish bipartite weighted network.
fn arb_net() -> impl Strategy<Value = transn_graph::HetNet> {
    (
        2usize..8,
        2usize..8,
        proptest::collection::vec((0usize..64, 0usize..64, 1u32..9), 4..40),
    )
        .prop_map(|(na, nb, raw)| {
            let mut b = HetNetBuilder::new();
            let ta = b.add_node_type("a");
            let tb = b.add_node_type("b");
            let e = b.add_edge_type("ab", ta, tb);
            let xs = b.add_nodes(ta, na);
            let ys = b.add_nodes(tb, nb);
            // Spanning zig-zag so no isolated view nodes.
            for i in 0..na.max(nb) {
                b.add_edge(xs[i % na], ys[i % nb], e, 1.0).unwrap();
            }
            for (u, v, w) in raw {
                let _ = b.add_edge(xs[u % na], ys[v % nb], e, w as f32);
            }
            b.build().unwrap()
        })
}

proptest! {
    /// Correlated walks only traverse real edges and respect the length.
    #[test]
    fn correlated_walks_follow_edges(net in arb_net(), seed in 0u64..1000) {
        let views = net.views();
        let v = &views[0];
        let cfg = WalkConfig { length: 16, ..WalkConfig::for_tests() };
        let w = CorrelatedWalker::new(v, cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        for start in 0..v.num_nodes() as u32 {
            let walk = w.walk_from(start, &mut rng);
            prop_assert!(walk.len() <= 16);
            prop_assert_eq!(walk[0], start);
            for pair in walk.windows(2) {
                prop_assert!(v.adj().contains(pair[0] as usize, pair[1]));
            }
        }
    }

    /// Simple walks also only traverse real edges.
    #[test]
    fn simple_walks_follow_edges(net in arb_net(), seed in 0u64..1000) {
        let views = net.views();
        let v = &views[0];
        let cfg = WalkConfig { length: 12, ..WalkConfig::for_tests() };
        let w = SimpleWalker::new(v, cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let walk = w.walk_from(0, &mut rng);
        for pair in walk.windows(2) {
            prop_assert!(v.adj().contains(pair[0] as usize, pair[1]));
        }
    }

    /// Node2Vec walks traverse real global edges for any p, q.
    #[test]
    fn node2vec_walks_follow_edges(
        net in arb_net(),
        p in 0.1f32..4.0,
        q in 0.1f32..4.0,
        seed in 0u64..1000,
    ) {
        let cfg = WalkConfig { length: 12, ..WalkConfig::for_tests() };
        let w = Node2VecWalker::new(net.global_adj(), p, q, cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let walk = w.walk_from(0, &mut rng);
        for pair in walk.windows(2) {
            prop_assert!(net.global_adj().contains(pair[0] as usize, pair[1]));
        }
    }

    /// Corpus budget: Σ clamp(deg, min, max) walks, all starting at their
    /// assigned node.
    #[test]
    fn corpus_budget_matches_spec(net in arb_net()) {
        let views = net.views();
        let v = &views[0];
        let cfg = WalkConfig {
            length: 6,
            min_walks_per_node: 1,
            max_walks_per_node: 3,
            seed: 5,
            threads: 3,
        };
        let corpus = CorrelatedWalker::new(v, cfg).generate();
        let expect: usize = (0..v.num_nodes() as u32)
            .map(|l| cfg.walks_for_degree(v.degree(l)))
            .sum();
        prop_assert_eq!(corpus.len(), expect);
    }

    /// Degree-biased start counts really are monotone in degree.
    #[test]
    fn walk_counts_monotone_in_degree(d1 in 0usize..100, d2 in 0usize..100) {
        let cfg = WalkConfig::default();
        if d1 <= d2 {
            prop_assert!(cfg.walks_for_degree(d1) <= cfg.walks_for_degree(d2));
        }
    }
}

#[test]
fn walks_cover_connected_view() {
    // On a connected view, long-enough walks from node 0 should visit
    // every node eventually (sanity against dead transitions).
    let mut b = HetNetBuilder::new();
    let t = b.add_node_type("t");
    let e = b.add_edge_type("tt", t, t);
    let nodes = b.add_nodes(t, 6);
    for i in 0..5 {
        b.add_edge(nodes[i], nodes[i + 1], e, 1.0).unwrap();
    }
    let net = b.build().unwrap();
    let views = net.views();
    let w = CorrelatedWalker::new(
        &views[0],
        WalkConfig {
            length: 200,
            ..WalkConfig::for_tests()
        },
    );
    let mut rng = StdRng::seed_from_u64(0);
    let visited: std::collections::HashSet<u32> = w.walk_from(0, &mut rng).into_iter().collect();
    assert_eq!(visited.len(), 6);
    let _ = NodeId(0);
}
