//! Minimal flag parser: `--name value` pairs plus positional arguments.
//! (No external CLI dependency — the workspace's dependency policy keeps
//! the allowed set small; see DESIGN.md §5.)

use std::collections::HashMap;

/// Parsed command line: positionals in order, `--key value` options, and
/// bare `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `argv` (without the program name). `--key value` becomes an
    /// option; a `--key` followed by another `--...` or nothing becomes a
    /// flag.
    pub fn parse(argv: &[String]) -> Args {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    out.options.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    out.flags.push(name.to_string());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        out
    }

    /// Positional argument by index.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// String option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// Parsed option with default.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for --{name}: {raw:?}")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("train --net g.tsv --dim 32 extra");
        assert_eq!(a.pos(0), Some("train"));
        assert_eq!(a.pos(1), Some("extra"));
        assert_eq!(a.get("net"), Some("g.tsv"));
        assert_eq!(a.get_parse("dim", 64usize).unwrap(), 32);
        assert_eq!(a.get_parse("iterations", 5usize).unwrap(), 5);
    }

    #[test]
    fn flags_without_values() {
        let a = parse("generate aminer --tiny --out dir");
        assert!(a.flag("tiny"));
        assert!(!a.flag("huge"));
        assert_eq!(a.get("out"), Some("dir"));
    }

    #[test]
    fn missing_required_reports_name() {
        let a = parse("train");
        let err = a.require("net").unwrap_err();
        assert!(err.contains("--net"));
    }

    #[test]
    fn bad_parse_reports_value() {
        let a = parse("x --dim banana");
        let err = a.get_parse::<usize>("dim", 1).unwrap_err();
        assert!(err.contains("banana"));
    }
}
