//! `transn` — command-line front end for the TransN reproduction.
//!
//! ```text
//! transn generate <aminer|blog|app-daily|app-weekly> --out DIR [--seed N] [--tiny]
//! transn train --net FILE --out FILE [--dim N] [--iterations N] [--seed N] [--variant NAME]
//! transn classify --embeddings FILE --labels FILE [--repeats N]
//! transn linkpred --net FILE [--dim N] [--remove FRAC] [--seed N]
//! transn stats --net FILE [--labels FILE]
//! transn neighbors --embeddings FILE --node ID [--top K]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
