//! Subcommand implementations.

use crate::args::Args;
use transn::{EpisodeConfig, Parallelism, TransN, TransNConfig, Variant};
use transn_eval::{auc_for_embeddings, classification_scores, ClassifyProtocol, LinkPredSplit};
use transn_graph::io;
use transn_graph::{NodeEmbeddings, NodeId};

const USAGE: &str = "usage:
  transn generate <aminer|blog|app-daily|app-weekly> --out DIR [--seed N] [--tiny]
  transn train --net FILE --out FILE [--dim N] [--iterations N] [--seed N] [--variant NAME]
               [--threads N] [--strict-determinism] [--episode-walks N] [--episodes-in-flight N]
  transn classify --embeddings FILE --labels FILE [--repeats N]
  transn linkpred --net FILE [--dim N] [--remove FRAC] [--seed N] [--threads N]
                  [--strict-determinism] [--episode-walks N] [--episodes-in-flight N]
  transn stats --net FILE [--labels FILE]
  transn neighbors --embeddings FILE --node ID [--top K]
  transn serve-build --embeddings FILE --out FILE
  transn query --store FILE (--node ID | --all) [--top K] [--metric dot|cosine]
               [--index brute|hnsw] [--threads N]";

/// Dispatch a parsed command line.
pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv);
    match args.pos(0) {
        Some("generate") => generate(&args),
        Some("train") => train(&args),
        Some("classify") => classify(&args),
        Some("linkpred") => linkpred(&args),
        Some("stats") => stats(&args),
        Some("neighbors") => neighbors(&args),
        Some("serve-build") => serve_build(&args),
        Some("query") => query(&args),
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let which = args
        .pos(1)
        .ok_or_else(|| format!("missing dataset\n{USAGE}"))?;
    let out = std::path::PathBuf::from(args.require("out")?);
    let seed: u64 = args.get_parse("seed", 42)?;
    let tiny = args.flag("tiny");

    use transn_synth::*;
    let ds = match (which, tiny) {
        ("aminer", false) => aminer_like(&AminerConfig::full(), seed),
        ("aminer", true) => aminer_like(&AminerConfig::tiny(), seed),
        ("blog", false) => blog_like(&BlogConfig::full(), seed),
        ("blog", true) => blog_like(&BlogConfig::tiny(), seed),
        ("app-daily", false) => app_like(&AppConfig::daily(), seed),
        ("app-daily", true) => app_like(&AppConfig::daily_tiny(), seed),
        ("app-weekly", false) => app_like(&AppConfig::weekly(), seed),
        ("app-weekly", true) => app_like(&AppConfig::weekly_tiny(), seed),
        (other, _) => return Err(format!("unknown dataset {other:?}")),
    };
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let net_path = out.join("network.tsv");
    let label_path = out.join("labels.tsv");
    io::save_network(&ds.net, &net_path).map_err(|e| e.to_string())?;
    io::write_labels(
        &ds.labels,
        std::fs::File::create(&label_path).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    println!("{}", ds.stats());
    println!("wrote {} and {}", net_path.display(), label_path.display());
    Ok(())
}

fn parse_variant(name: &str) -> Result<Variant, String> {
    if name.eq_ignore_ascii_case("full") {
        return Ok(Variant::Full);
    }
    Variant::all()
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let all: Vec<&str> = Variant::all().iter().map(|v| v.label()).collect();
            format!("unknown variant {name:?}; one of \"full\" or {all:?}")
        })
}

/// `--threads N` and `--strict-determinism` → a [`Parallelism`] policy
/// for the skip-gram trainers.
fn parse_parallelism(args: &Args) -> Result<Parallelism, String> {
    let threads: usize = args.get_parse("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(if args.flag("strict-determinism") {
        Parallelism::strict(threads)
    } else {
        Parallelism::hogwild(threads)
    })
}

/// `--episode-walks N` and `--episodes-in-flight N` → the episodic
/// pipeline config (DESIGN.md §13). `--episode-walks 0` (the default)
/// keeps the monolithic schedule.
fn parse_episode(args: &Args) -> Result<EpisodeConfig, String> {
    let episode = EpisodeConfig {
        episode_walks: args.get_parse("episode-walks", 0)?,
        episodes_in_flight: args.get_parse("episodes-in-flight", 2)?,
    };
    episode
        .validate()
        .map_err(|e| format!("--episodes-in-flight: {e}"))?;
    Ok(episode)
}

fn train(args: &Args) -> Result<(), String> {
    // Validate arguments before touching the filesystem, so a bad flag is
    // reported as itself rather than masked by an I/O error.
    let out = args.require("out")?;
    let mut cfg = TransNConfig {
        dim: args.get_parse("dim", 64)?,
        iterations: args.get_parse("iterations", 5)?,
        parallelism: parse_parallelism(args)?,
        episode: parse_episode(args)?,
        ..TransNConfig::default()
    }
    .with_seed(args.get_parse("seed", 1234u64)?);
    if let Some(v) = args.get("variant") {
        cfg.variant = parse_variant(v)?;
    }
    let net = io::load_network(args.require("net")?).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let trainer = TransN::new(&net, cfg);
    println!(
        "training on {} nodes / {} edges, {} views, {} view-pairs…",
        net.num_nodes(),
        net.num_edges(),
        trainer.num_views(),
        trainer.num_pairs()
    );
    let emb = trainer.train();
    emb.write_tsv(std::fs::File::create(out).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} embeddings (d = {}) to {out} in {:?}",
        emb.num_nodes(),
        emb.dim(),
        t0.elapsed()
    );
    Ok(())
}

fn classify(args: &Args) -> Result<(), String> {
    let emb = NodeEmbeddings::read_tsv(
        std::fs::File::open(args.require("embeddings")?).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let labels = io::read_labels(
        std::fs::File::open(args.require("labels")?).map_err(|e| e.to_string())?,
        emb.num_nodes(),
    )
    .map_err(|e| e.to_string())?;
    let protocol = ClassifyProtocol {
        repeats: args.get_parse("repeats", 10)?,
        ..Default::default()
    };
    let f1 = classification_scores(&emb, &labels, &protocol);
    println!("macro-F1 {:.4}  micro-F1 {:.4}", f1.macro_f1, f1.micro_f1);
    Ok(())
}

fn linkpred(args: &Args) -> Result<(), String> {
    let remove: f64 = args.get_parse("remove", 0.4)?;
    let seed: u64 = args.get_parse("seed", 1234)?;
    let cfg = TransNConfig {
        dim: args.get_parse("dim", 64)?,
        parallelism: parse_parallelism(args)?,
        episode: parse_episode(args)?,
        ..TransNConfig::default()
    }
    .with_seed(seed);
    let net = io::load_network(args.require("net")?).map_err(|e| e.to_string())?;
    let split = LinkPredSplit::new(&net, remove, seed);
    let emb = TransN::new(&split.train_net, cfg).train();
    let auc = auc_for_embeddings(&split, &emb);
    println!(
        "link prediction AUC {auc:.4} ({} positives, {} negatives, {:.0}% removed)",
        split.positives.len(),
        split.negatives.len(),
        remove * 100.0
    );
    Ok(())
}

fn stats(args: &Args) -> Result<(), String> {
    let net = io::load_network(args.require("net")?).map_err(|e| e.to_string())?;
    let labels = match args.get("labels") {
        Some(path) => Some(
            io::read_labels(
                std::fs::File::open(path).map_err(|e| e.to_string())?,
                net.num_nodes(),
            )
            .map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    let stats = transn_graph::NetworkStats::compute("network", &net, labels.as_ref());
    println!("{stats}");
    let views = net.views();
    for v in &views {
        println!(
            "view {:<12} {:?}: {} nodes, {} edges",
            net.schema().edge_type_name(v.etype()),
            v.kind(),
            v.num_nodes(),
            v.num_edges()
        );
    }
    println!("view-pairs: {}", net.view_pairs(&views).len());
    Ok(())
}

fn neighbors(args: &Args) -> Result<(), String> {
    let emb = NodeEmbeddings::read_tsv(
        std::fs::File::open(args.require("embeddings")?).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let node: u32 = args.get_parse("node", 0)?;
    let top: usize = args.get_parse("top", 10)?;
    if node as usize >= emb.num_nodes() {
        return Err(format!("node {node} out of range (0..{})", emb.num_nodes()));
    }
    let mut sims: Vec<(u32, f32)> = (0..emb.num_nodes() as u32)
        .filter(|&i| i != node)
        .map(|i| (i, emb.cosine(NodeId(node), NodeId(i))))
        .collect();
    sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("nearest neighbours of node {node} (cosine):");
    for (i, s) in sims.into_iter().take(top) {
        println!("  {i:>8}  {s:+.4}");
    }
    Ok(())
}

fn serve_build(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let emb = NodeEmbeddings::read_tsv(
        std::fs::File::open(args.require("embeddings")?).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    transn_serve::EmbStore::write_file(&emb, None, out).map_err(|e| e.to_string())?;
    println!(
        "wrote store: {} nodes (d = {}) to {out}",
        emb.num_nodes(),
        emb.dim()
    );
    Ok(())
}

fn query(args: &Args) -> Result<(), String> {
    use transn_serve::{batch_top_k, BruteForceIndex, EmbStore, HnswConfig, HnswIndex, Metric};

    let store = EmbStore::open(args.require("store")?).map_err(|e| e.to_string())?;
    let top: usize = args.get_parse("top", 10)?;
    let metric = Metric::parse(args.get("metric").unwrap_or("cosine"))?;
    let threads: usize = args.get_parse("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let ids: Vec<u32> = if args.flag("all") {
        (0..store.num_nodes() as u32).collect()
    } else {
        let node: u32 = args
            .require("node")?
            .parse()
            .map_err(|e| format!("--node: {e}"))?;
        if node as usize >= store.num_nodes() {
            return Err(format!(
                "node {node} out of range (0..{})",
                store.num_nodes()
            ));
        }
        vec![node]
    };
    let queries: Vec<&[f32]> = ids.iter().map(|&i| store.row(i as usize)).collect();
    let exclude: Vec<Option<u32>> = ids.iter().map(|&i| Some(i)).collect();
    let par = Parallelism::strict(threads);
    let results = match args.get("index").unwrap_or("brute") {
        "brute" => {
            let index = BruteForceIndex::new(&store, metric);
            batch_top_k(&index, &queries, top, &exclude, par)
        }
        "hnsw" => {
            let index = HnswIndex::build(&store, metric, HnswConfig::default());
            batch_top_k(&index, &queries, top, &exclude, par)
        }
        other => return Err(format!("unknown index {other:?}; one of brute, hnsw")),
    };
    for (qid, result) in ids.iter().zip(results) {
        for n in result {
            println!("{qid}\t{}\t{:.6}", n.id, n.score);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<(), String> {
        run(&cmd.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.contains("usage"));
    }

    #[test]
    fn empty_invocation_shows_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("usage"));
    }

    #[test]
    fn parallelism_flags() {
        let parse =
            |s: &str| Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>());
        assert_eq!(
            parse_parallelism(&parse("train")).unwrap(),
            Parallelism::hogwild(1)
        );
        assert_eq!(
            parse_parallelism(&parse("train --threads 4")).unwrap(),
            Parallelism::hogwild(4)
        );
        assert_eq!(
            parse_parallelism(&parse("train --threads 2 --strict-determinism")).unwrap(),
            Parallelism::strict(2)
        );
        assert!(parse_parallelism(&parse("train --threads 0")).is_err());
        assert!(parse_parallelism(&parse("train --threads banana")).is_err());
    }

    #[test]
    fn episode_flags() {
        let parse =
            |s: &str| Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>());
        let defaults = parse_episode(&parse("train")).unwrap();
        assert_eq!(defaults.episode_walks, 0);
        assert_eq!(defaults.episodes_in_flight, 2);
        assert!(!defaults.enabled());
        let ep = parse_episode(&parse("train --episode-walks 4096")).unwrap();
        assert_eq!(ep.episode_walks, 4096);
        assert!(ep.enabled());
        let ep = parse_episode(&parse("train --episodes-in-flight 3")).unwrap();
        assert_eq!(ep.episodes_in_flight, 3);
        let err = parse_episode(&parse("train --episodes-in-flight 0")).unwrap_err();
        assert!(err.contains("--episodes-in-flight"), "{err}");
        assert!(parse_episode(&parse("train --episode-walks banana")).is_err());
    }

    #[test]
    fn generate_train_classify_roundtrip() {
        let dir = std::env::temp_dir().join(format!("transn-cli-test-{}", std::process::id()));
        let dirs = dir.display();
        run_str(&format!("generate aminer --tiny --out {dirs} --seed 3")).unwrap();
        run_str(&format!(
            "train --net {dirs}/network.tsv --out {dirs}/emb.tsv --dim 16 --iterations 1 --threads 2 --strict-determinism"
        ))
        .unwrap();
        run_str(&format!(
            "classify --embeddings {dirs}/emb.tsv --labels {dirs}/labels.tsv --repeats 1"
        ))
        .unwrap();
        run_str(&format!(
            "stats --net {dirs}/network.tsv --labels {dirs}/labels.tsv"
        ))
        .unwrap();
        run_str(&format!(
            "neighbors --embeddings {dirs}/emb.tsv --node 0 --top 3"
        ))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn variant_parsing() {
        assert_eq!(parse_variant("TransN").unwrap(), Variant::Full);
        assert_eq!(parse_variant("full").unwrap(), Variant::Full);
        assert_eq!(
            parse_variant("TransN-Without-Cross-View").unwrap(),
            Variant::WithoutCrossView
        );
        assert!(parse_variant("bogus").is_err());
    }

    #[test]
    fn bad_dataset_rejected() {
        let err = run_str("generate nope --out /tmp/x").unwrap_err();
        assert!(err.contains("unknown dataset"));
    }
}
