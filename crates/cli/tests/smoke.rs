//! End-to-end smoke tests that spawn the real `transn` binary.
//!
//! Unlike the in-process tests in `commands.rs`, these exercise the whole
//! surface a user sees: argv parsing, exit codes, stderr formatting, and
//! the files left on disk.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn transn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_transn"))
        .args(args)
        .output()
        .expect("spawn transn binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("transn-smoke-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn no_args_prints_usage_and_exits_nonzero() {
    let out = transn(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn unknown_command_is_a_readable_error() {
    let out = transn(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn zero_threads_is_rejected() {
    let out = transn(&[
        "train",
        "--net",
        "x.tsv",
        "--out",
        "y.tsv",
        "--threads",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--threads"), "{}", stderr(&out));
}

#[test]
fn malformed_edge_list_fails_with_line_context() {
    let scratch = Scratch::new("malformed");
    let net = scratch.path("bad.tsv");
    fs::write(
        &net,
        "# transn heterogeneous edge list v1\n\
         nodetype\t0\tuser\n\
         edgetype\t0\tknows\t0\t0\n\
         node\t0\t0\n\
         node\t1\t0\n\
         edge\t0\t1\t0\tNaN\n",
    )
    .unwrap();
    let out = transn(&["train", "--net", &net, "--out", &scratch.path("emb.tsv")]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("error:"), "{err}");
    assert!(
        err.contains("line 6"),
        "error should name the bad line: {err}"
    );
    assert!(err.contains("weight"), "error should name the cause: {err}");
}

#[test]
fn truncated_edge_list_fails_with_line_context() {
    let scratch = Scratch::new("truncated");
    let net = scratch.path("cut.tsv");
    fs::write(
        &net,
        "# transn heterogeneous edge list v1\n\
         nodetype\t0\tuser\n\
         edgetype\t0\tknows\t0\t0\n\
         node\t0\t0\n\
         node\t1\t0\n\
         edge\t0\t1\n",
    )
    .unwrap();
    let out = transn(&["stats", "--net", &net]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("line 6"), "{err}");
}

#[test]
fn generate_train_classify_roundtrip() {
    let scratch = Scratch::new("roundtrip");
    let dir = scratch.path("");
    let out = transn(&["generate", "aminer", "--tiny", "--out", &dir, "--seed", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let net = scratch.path("network.tsv");
    let labels = scratch.path("labels.tsv");
    let emb = scratch.path("emb.tsv");
    let out = transn(&[
        "train",
        "--net",
        &net,
        "--out",
        &emb,
        "--dim",
        "8",
        "--iterations",
        "1",
        "--seed",
        "7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(fs::metadata(&emb).map(|m| m.len() > 0).unwrap_or(false));
    let out = transn(&[
        "classify",
        "--embeddings",
        &emb,
        "--labels",
        &labels,
        "--repeats",
        "1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        report.contains("micro"),
        "classify should report F1: {report}"
    );
}

#[test]
fn strict_determinism_survives_thread_count_changes() {
    let scratch = Scratch::new("strict");
    let dir = scratch.path("");
    let out = transn(&["generate", "aminer", "--tiny", "--out", &dir, "--seed", "5"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let net = scratch.path("network.tsv");
    let mut embs = Vec::new();
    for threads in ["2", "4"] {
        let emb = scratch.path(&format!("emb-{threads}.tsv"));
        let out = transn(&[
            "train",
            "--net",
            &net,
            "--out",
            &emb,
            "--dim",
            "8",
            "--iterations",
            "1",
            "--seed",
            "11",
            "--threads",
            threads,
            "--strict-determinism",
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        embs.push(fs::read(&emb).unwrap());
    }
    assert!(
        embs[0] == embs[1],
        "--strict-determinism must make --threads 2 and --threads 4 byte-identical"
    );
}

#[test]
fn episodic_training_is_byte_identical_to_monolithic_episode() {
    let scratch = Scratch::new("episodic");
    let dir = scratch.path("");
    let out = transn(&["generate", "aminer", "--tiny", "--out", &dir, "--seed", "9"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let net = scratch.path("network.tsv");
    // One giant episode (the whole corpus resident at once — the
    // monolithic run of the stream schedule) against small, pipelined
    // episodes: under --strict-determinism the embeddings must match byte
    // for byte at any episode size and thread count (DESIGN.md §13).
    let mut embs = Vec::new();
    for (name, episode_walks, in_flight, threads) in [
        ("mono", "1000000000", "1", "1"),
        ("ep64", "64", "2", "2"),
        ("ep7", "7", "3", "4"),
    ] {
        let emb = scratch.path(&format!("emb-{name}.tsv"));
        let out = transn(&[
            "train",
            "--net",
            &net,
            "--out",
            &emb,
            "--dim",
            "8",
            "--iterations",
            "1",
            "--seed",
            "13",
            "--threads",
            threads,
            "--strict-determinism",
            "--episode-walks",
            episode_walks,
            "--episodes-in-flight",
            in_flight,
        ]);
        assert!(out.status.success(), "{name}: {}", stderr(&out));
        embs.push(fs::read(&emb).unwrap());
    }
    assert!(
        embs[1] == embs[0],
        "--episode-walks 64 must be byte-identical to the single-episode run"
    );
    assert!(
        embs[2] == embs[0],
        "--episode-walks 7 must be byte-identical to the single-episode run"
    );
}

#[test]
fn zero_episodes_in_flight_is_rejected() {
    let out = transn(&[
        "train",
        "--net",
        "x.tsv",
        "--out",
        "y.tsv",
        "--episodes-in-flight",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--episodes-in-flight"),
        "{}",
        stderr(&out)
    );
}

/// A tiny embedding TSV for the serving-layer tests: 20 nodes in 4-D,
/// deterministic irregular values.
fn write_toy_embeddings(path: &str) {
    let mut tsv = String::from("# transn embeddings v1 nodes=20 dim=4\n");
    for i in 0..20 {
        tsv.push_str(&format!("{i}"));
        for j in 0..4 {
            tsv.push_str(&format!("\t{}", ((i * 7 + j * 3) % 13) as f32 / 6.5 - 1.0));
        }
        tsv.push('\n');
    }
    fs::write(path, tsv).unwrap();
}

#[test]
fn usage_mentions_serving_commands() {
    let out = transn(&[]);
    let err = stderr(&out);
    assert!(err.contains("serve-build"), "{err}");
    assert!(err.contains("query"), "{err}");
}

#[test]
fn serve_build_then_query_roundtrip() {
    let scratch = Scratch::new("serve");
    let emb = scratch.path("emb.tsv");
    let store = scratch.path("emb.store");
    write_toy_embeddings(&emb);
    let out = transn(&["serve-build", "--embeddings", &emb, "--out", &store]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(fs::metadata(&store).map(|m| m.len() > 0).unwrap_or(false));
    for index in ["brute", "hnsw"] {
        let out = transn(&[
            "query", "--store", &store, "--node", "3", "--top", "5", "--index", index,
        ]);
        assert!(out.status.success(), "index {index}: {}", stderr(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 5, "index {index}: {stdout}");
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            assert_eq!(fields.len(), 3, "index {index}: {line}");
            assert_eq!(fields[0], "3");
            assert_ne!(fields[1], "3", "query node must be excluded");
            fields[2].parse::<f32>().expect("score field");
        }
    }
}

#[test]
fn query_threads_are_byte_identical() {
    let scratch = Scratch::new("serve-threads");
    let emb = scratch.path("emb.tsv");
    let store = scratch.path("emb.store");
    write_toy_embeddings(&emb);
    let out = transn(&["serve-build", "--embeddings", &emb, "--out", &store]);
    assert!(out.status.success(), "{}", stderr(&out));
    let mut outputs = Vec::new();
    for threads in ["2", "4"] {
        let out = transn(&[
            "query",
            "--store",
            &store,
            "--all",
            "--top",
            "4",
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        outputs.push(out.stdout);
    }
    assert!(
        outputs[0] == outputs[1],
        "--threads 2 and --threads 4 must emit byte-identical results"
    );
}

#[test]
fn malformed_store_fails_with_typed_root_cause() {
    let scratch = Scratch::new("serve-bad");
    let store = scratch.path("bad.store");

    // Wrong magic: a valid-length header that is not a store.
    let mut bytes = vec![0u8; 384];
    bytes[0..8].copy_from_slice(b"NOTSTORE");
    fs::write(&store, &bytes).unwrap();
    let out = transn(&["query", "--store", &store, "--node", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("bad magic"), "{err}");

    // Truncated below the header.
    fs::write(&store, [0u8; 10]).unwrap();
    let out = transn(&["query", "--store", &store, "--node", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("truncated"), "{err}");
}
