//! Shared generator machinery: power-law popularity weights, log-normal
//! edge weights, and a deduplicating edge sink.

use rand::Rng;
use std::collections::HashSet;
use transn_graph::{EdgeTypeId, GraphError, HetNetBuilder, NodeId};

/// Power-law popularity weights `w_i ∝ (i + 1)^(−alpha)`, shuffled so the
/// popular items are spread across ids. Used to give generators realistic
/// heavy-tailed degree distributions.
pub fn popularity_weights<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Vec<f64> {
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        w.swap(i, j);
    }
    w
}

/// Sample an index proportionally to `weights` (linear scan; fine for
/// one-off draws and small arrays — edge loops over large node sets should
/// precompute [`prefix_sums`] once and use [`weighted_pick_prefix`], which
/// returns bit-identical picks in O(log n)).
pub fn weighted_pick<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let x = rng.random::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

/// Left-to-right running sums of `weights`: `p[i] = w[0] + … + w[i]`.
/// The identical accumulation order [`weighted_pick`] uses, so the partial
/// sums (and therefore every pick) match the linear scan bit for bit.
pub fn prefix_sums(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0f64;
    weights
        .iter()
        .map(|&w| {
            acc += w;
            acc
        })
        .collect()
}

/// [`weighted_pick`] over precomputed [`prefix_sums`]: draws the same
/// single uniform and inverts the same CDF by binary search, so for a given
/// RNG state it returns exactly the index the linear scan would — it just
/// stops being O(n) per draw, which is what makes the 100×-scale synthetic
/// generators (millions of edge draws over hundreds of thousands of
/// candidates) tractable.
pub fn weighted_pick_prefix<R: Rng + ?Sized>(prefix: &[f64], rng: &mut R) -> usize {
    let total = *prefix.last().expect("non-empty weights");
    debug_assert!(total > 0.0);
    let x = rng.random::<f64>() * total;
    // First index whose running sum exceeds x — `x < acc` in scan terms.
    let i = prefix.partition_point(|&p| p <= x);
    i.min(prefix.len() - 1)
}

/// One standard-normal sample (Box–Muller, no spare caching — generators
/// are cold code).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal sample with the given log-space mean and sigma, clamped to
/// `[0.1, cap]` — the shape of usage-time and click-count edge weights.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, cap: f32) -> f32 {
    ((mu + sigma * gaussian(rng)).exp() as f32).clamp(0.1, cap)
}

/// Edge sink that silently drops duplicate `(u, v, etype)` edges and
/// self-loops, so generators can propose edges freely.
pub struct EdgeSink {
    seen: HashSet<(u32, u32, u32)>,
}

impl EdgeSink {
    /// Fresh sink.
    pub fn new() -> Self {
        EdgeSink {
            seen: HashSet::new(),
        }
    }

    /// Add the edge unless it is a duplicate or self-loop. Returns whether
    /// an edge was actually added.
    pub fn add(
        &mut self,
        b: &mut HetNetBuilder,
        u: NodeId,
        v: NodeId,
        etype: EdgeTypeId,
        weight: f32,
    ) -> Result<bool, GraphError> {
        if u == v {
            return Ok(false);
        }
        let key = if u.0 < v.0 {
            (u.0, v.0, etype.0)
        } else {
            (v.0, u.0, etype.0)
        };
        if !self.seen.insert(key) {
            return Ok(false);
        }
        b.add_edge(u, v, etype, weight)?;
        Ok(true)
    }

    /// Number of distinct edges accepted so far.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl Default for EdgeSink {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn popularity_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = popularity_weights(100, 1.0, &mut rng);
        let max = w.iter().cloned().fold(0.0, f64::max);
        let min = w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 50.0);
        assert_eq!(w.len(), 100);
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = vec![1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_pick(&w, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "{ratio}");
    }

    #[test]
    fn prefix_pick_matches_linear_scan_bitwise() {
        // Same seed → two RNGs in lockstep; every draw must select the
        // identical index, including skewed and tied weights.
        let mut rng = StdRng::seed_from_u64(7);
        let weights: Vec<f64> = (0..257)
            .map(|i| {
                if i % 5 == 0 {
                    0.25
                } else {
                    1.0 / (i + 1) as f64
                }
            })
            .collect();
        let prefix = prefix_sums(&weights);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            assert_eq!(
                weighted_pick(&weights, &mut a),
                weighted_pick_prefix(&prefix, &mut b)
            );
        }
        // Degenerate single-entry table.
        assert_eq!(weighted_pick_prefix(&prefix_sums(&[3.0]), &mut rng), 0);
    }

    #[test]
    fn lognormal_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = lognormal(&mut rng, 1.0, 1.0, 50.0);
            assert!((0.1..=50.0).contains(&x));
        }
    }

    #[test]
    fn sink_dedupes_and_drops_self_loops() {
        let mut b = HetNetBuilder::new();
        let t = b.add_node_type("t");
        let e = b.add_edge_type("tt", t, t);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        let mut sink = EdgeSink::new();
        assert!(sink.add(&mut b, n0, n1, e, 1.0).unwrap());
        assert!(!sink.add(&mut b, n1, n0, e, 2.0).unwrap()); // duplicate, reversed
        assert!(!sink.add(&mut b, n0, n0, e, 1.0).unwrap()); // self-loop
        assert_eq!(sink.len(), 1);
        assert_eq!(b.num_edges(), 1);
    }
}
