//! App-Daily / App-Weekly-like applet-store networks (Table II rows 3–4),
//! scaled ~20×.
//!
//! Schema matches the paper's Tencent applet logs: applets, users, and
//! query keywords; **weighted** AU edges (time a user spends on an applet)
//! and **weighted** AK edges (downloads of an applet through a keyword's
//! result page); a subset of applets carries a category label (9
//! categories, as in the Figure 6 case study).
//!
//! Two properties the paper's analysis leans on are reproduced:
//!
//! 1. The networks are **sparse** and **weighted**, which is where TransN's
//!    weight-aware walk (π₁/π₂) pays off (§IV-B1).
//! 2. The AU and AK views are only **weakly correlated** — "a user's usage
//!    of an applet scarcely relates to whether the applet is searched by a
//!    keyword" (§IV-B2) — implemented by giving the AK view an independent
//!    keyword-affinity noise source.

use crate::common::{lognormal, popularity_weights, prefix_sums, weighted_pick_prefix, EdgeSink};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transn_graph::{HetNetBuilder, Labels};

/// Size and structure knobs of the applet-store generator.
#[derive(Clone, Copy, Debug)]
pub struct AppConfig {
    /// Dataset display name.
    pub name: &'static str,
    /// Number of applets (paper daily: 147,968; full config ~1/20).
    pub applets: usize,
    /// Number of users (paper daily: 16,527).
    pub users: usize,
    /// Number of query keywords (paper daily: 27,921).
    pub keywords: usize,
    /// Applet categories (the paper labels 9).
    pub categories: usize,
    /// How many applets carry labels (paper: 5,375 across both nets).
    pub labeled_applets: usize,
    /// Mean AU edges per user.
    pub usages_per_user: f64,
    /// Mean AK edges per applet.
    pub keywords_per_applet: f64,
    /// Probability an AU edge follows the user's category taste.
    pub usage_fidelity: f64,
    /// Probability an AK edge follows the applet's category — deliberately
    /// lower than `usage_fidelity` so the two views correlate weakly.
    pub keyword_fidelity: f64,
    /// Fraction of applet labels flipped to a random category (the paper's
    /// category taxonomy includes a catch-all "others" class; see §IV-D).
    pub label_noise: f64,
}

impl AppConfig {
    /// App-Daily at ~1/20 of Table II.
    pub fn daily() -> Self {
        AppConfig {
            name: "App-Daily",
            applets: 7_398,
            users: 826,
            keywords: 1_396,
            categories: 9,
            labeled_applets: 269,
            usages_per_user: 18.1,    // paper: 300k AU / 16.5k users
            keywords_per_applet: 2.5, // paper: 367k AK / 148k applets
            usage_fidelity: 0.7,
            keyword_fidelity: 0.45,
            label_noise: 0.3,
        }
    }

    /// App-Weekly at ~1/20 of Table II: same store, more users and much
    /// denser usage.
    pub fn weekly() -> Self {
        AppConfig {
            name: "App-Weekly",
            applets: 7_760,
            users: 11_670,
            keywords: 1_489,
            categories: 9,
            labeled_applets: 269,
            usages_per_user: 14.7, // paper: 3.4M AU / 233k users
            keywords_per_applet: 2.7,
            usage_fidelity: 0.7,
            keyword_fidelity: 0.45,
            label_noise: 0.3,
        }
    }

    /// App-Daily multiplied by `factor` (structure knobs unchanged): the
    /// scale axis of the unified bench harness. The store is
    /// applet-dominated, so `factor` ≈ 100 crosses a million nodes.
    pub fn scaled(factor: usize) -> Self {
        let f = factor.max(1);
        AppConfig {
            applets: 7_398 * f,
            users: 826 * f,
            keywords: 1_396 * f,
            ..AppConfig::daily()
        }
    }

    /// Tiny daily variant for tests.
    pub fn daily_tiny() -> Self {
        AppConfig {
            name: "App-Daily",
            applets: 90,
            users: 30,
            keywords: 25,
            categories: 5,
            labeled_applets: 40,
            usages_per_user: 6.0,
            keywords_per_applet: 2.0,
            usage_fidelity: 0.85,
            keyword_fidelity: 0.6,
            label_noise: 0.0,
        }
    }

    /// Tiny weekly variant for tests.
    pub fn weekly_tiny() -> Self {
        AppConfig {
            name: "App-Weekly",
            users: 60,
            ..Self::daily_tiny()
        }
    }
}

/// Generate an applet-store dataset.
pub fn app_like(cfg: &AppConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HetNetBuilder::new();
    let t_applet = b.add_node_type("applet");
    let t_user = b.add_node_type("user");
    let t_kw = b.add_node_type("keyword");
    let e_au = b.add_edge_type("AU", t_applet, t_user);
    let e_ak = b.add_edge_type("AK", t_applet, t_kw);

    let applets = b.add_nodes(t_applet, cfg.applets);
    let users = b.add_nodes(t_user, cfg.users);
    let keywords = b.add_nodes(t_kw, cfg.keywords);

    let applet_cat: Vec<usize> = (0..cfg.applets)
        .map(|_| rng.random_range(0..cfg.categories))
        .collect();
    // Each user prefers one category (with occasional second tastes via
    // the fidelity noise); each keyword addresses one category.
    let user_taste: Vec<usize> = (0..cfg.users)
        .map(|_| rng.random_range(0..cfg.categories))
        .collect();
    let kw_cat: Vec<usize> = (0..cfg.keywords).map(|i| i % cfg.categories).collect();

    let applet_pop = popularity_weights(cfg.applets, 1.0, &mut rng);
    let kw_pop = popularity_weights(cfg.keywords, 0.8, &mut rng);

    let mut cat_applet_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.categories];
    let mut cat_applet_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.categories];
    for (a, &c) in applet_cat.iter().enumerate() {
        cat_applet_w[c].push(applet_pop[a]);
        cat_applet_id[c].push(a);
    }
    let mut cat_kw_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.categories];
    let mut cat_kw_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.categories];
    for (k, &c) in kw_cat.iter().enumerate() {
        cat_kw_w[c].push(kw_pop[k]);
        cat_kw_id[c].push(k);
    }

    // O(log n) CDF tables for the edge loops — bit-identical picks to the
    // linear scan (see `common::weighted_pick_prefix`); the `scaled`
    // store draws millions of edges over 10^5–10^6-entry weight arrays.
    let applet_cdf = prefix_sums(&applet_pop);
    let kw_cdf = prefix_sums(&kw_pop);
    let cat_applet_cdf: Vec<Vec<f64>> = cat_applet_w.iter().map(|w| prefix_sums(w)).collect();
    let cat_kw_cdf: Vec<Vec<f64>> = cat_kw_w.iter().map(|w| prefix_sums(w)).collect();

    let mut sink = EdgeSink::new();

    // AU: usage time (log-normal). Matching tastes get longer sessions,
    // which is exactly the signal π₂ exploits.
    let au_target = (cfg.users as f64 * cfg.usages_per_user) as usize;
    while sink.len() < au_target {
        let u = rng.random_range(0..cfg.users);
        let taste = user_taste[u];
        let (a, matched) =
            if rng.random::<f64>() < cfg.usage_fidelity && !cat_applet_id[taste].is_empty() {
                (
                    cat_applet_id[taste][weighted_pick_prefix(&cat_applet_cdf[taste], &mut rng)],
                    true,
                )
            } else {
                (weighted_pick_prefix(&applet_cdf, &mut rng), false)
            };
        let mu = if matched { 3.0 } else { 1.2 };
        let w = lognormal(&mut rng, mu, 0.8, 600.0);
        sink.add(&mut b, applets[a], users[u], e_au, w).unwrap();
    }

    // AK: download-through-keyword counts. Lower fidelity decouples this
    // view from AU.
    let au_edges = sink.len();
    let ak_target = (cfg.applets as f64 * cfg.keywords_per_applet) as usize;
    while sink.len() - au_edges < ak_target {
        let a = weighted_pick_prefix(&applet_cdf, &mut rng);
        let cat = applet_cat[a];
        let (k, matched) =
            if rng.random::<f64>() < cfg.keyword_fidelity && !cat_kw_id[cat].is_empty() {
                (
                    cat_kw_id[cat][weighted_pick_prefix(&cat_kw_cdf[cat], &mut rng)],
                    true,
                )
            } else {
                (weighted_pick_prefix(&kw_cdf, &mut rng), false)
            };
        let mu = if matched { 2.0 } else { 0.8 };
        let w = lognormal(&mut rng, mu, 0.7, 300.0).round().max(1.0);
        sink.add(&mut b, applets[a], keywords[k], e_ak, w).unwrap();
    }

    let num_nodes = b.num_nodes();
    let net = b.build().expect("generator produced an invalid network");

    // Label a random subset of applets, stratified so every category is
    // represented (the Figure 6 case study samples 10 per category).
    let mut labels = Labels::new(num_nodes);
    let names = [
        "catering",
        "ride-sharing",
        "life-service",
        "game",
        "hotel-booking",
        "shopping",
        "education",
        "finance",
        "others",
    ];
    for c in 0..cfg.categories {
        labels.add_class(names.get(c).copied().unwrap_or("misc"));
    }
    let per_cat = (cfg.labeled_applets / cfg.categories).max(1);
    let mut labeled = 0usize;
    for (c, pool) in cat_applet_id.iter().enumerate().take(cfg.categories) {
        let mut taken = 0usize;
        let mut tries = 0usize;
        while taken < per_cat && tries < pool.len() * 4 && !pool.is_empty() {
            let a = pool[rng.random_range(0..pool.len())];
            if labels.get(applets[a]).is_none() {
                let observed = if rng.random::<f64>() < cfg.label_noise {
                    rng.random_range(0..cfg.categories) as u32
                } else {
                    c as u32
                };
                labels.set(applets[a], observed);
                taken += 1;
                labeled += 1;
            }
            tries += 1;
        }
    }
    debug_assert!(labeled > 0);

    Dataset {
        name: cfg.name.into(),
        net,
        labels,
        metapath: vec!["user", "applet", "keyword", "applet", "user"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_ii() {
        let d = app_like(&AppConfig::daily_tiny(), 1);
        let s = d.net.schema();
        assert_eq!(s.num_node_types(), 3);
        assert_eq!(s.num_edge_types(), 2);
        use transn_graph::ViewKind;
        let views = d.net.views();
        assert_eq!(views[0].kind(), ViewKind::Heter);
        assert_eq!(views[1].kind(), ViewKind::Heter);
    }

    #[test]
    fn edges_are_weighted() {
        let d = app_like(&AppConfig::daily_tiny(), 2);
        let distinct: std::collections::HashSet<u32> =
            d.net.edges().iter().map(|e| e.weight.to_bits()).collect();
        assert!(
            distinct.len() > 10,
            "weights should vary, got {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn labels_are_stratified_across_categories() {
        let d = app_like(&AppConfig::daily_tiny(), 3);
        let mut per_class = vec![0usize; d.labels.num_classes()];
        for (_, c) in d.labels.labeled() {
            per_class[c as usize] += 1;
        }
        for (c, &n) in per_class.iter().enumerate() {
            assert!(n > 0, "class {c} unlabeled");
        }
    }

    #[test]
    fn matched_usage_has_higher_weight() {
        let d = app_like(&AppConfig::daily(), 4);
        let au = d.net.schema().edge_type_by_name("AU").unwrap();
        // Split AU weights into high and low halves; the planted log-normal
        // means (e^3 vs e^1.2) must make the mean weight clearly bimodal.
        let ws: Vec<f32> = d
            .net
            .edges()
            .iter()
            .filter(|e| e.etype == au)
            .map(|e| e.weight)
            .collect();
        let mean = ws.iter().sum::<f32>() / ws.len() as f32;
        let above = ws.iter().filter(|&&w| w > mean).count() as f64 / ws.len() as f64;
        // A heavy right tail: far fewer than half the edges above the mean.
        assert!(above < 0.45, "above-mean fraction {above}");
    }

    #[test]
    fn weekly_is_bigger_than_daily() {
        let daily = app_like(&AppConfig::daily_tiny(), 5);
        let weekly = app_like(&AppConfig::weekly_tiny(), 5);
        assert!(weekly.net.num_nodes() > daily.net.num_nodes());
    }

    #[test]
    fn full_scale_matches_paper_proportions() {
        let d = app_like(&AppConfig::daily(), 6);
        let s = d.stats();
        assert_eq!(s.nodes_per_type[0].1, 7_398);
        assert_eq!(s.nodes_per_type[1].1, 826);
        // Sparse: average degree well below BLOG's.
        assert!(s.average_degree < 10.0, "avg degree {}", s.average_degree);
        assert!(s.num_labeled >= 260, "labeled {}", s.num_labeled);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = app_like(&AppConfig::daily_tiny(), 8);
        let b = app_like(&AppConfig::daily_tiny(), 8);
        assert_eq!(a.net.edges(), b.net.edges());
    }
}
