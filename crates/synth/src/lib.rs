//! Synthetic heterogeneous-network generators standing in for the four
//! datasets of the TransN paper's evaluation (§IV-A1, Table II).
//!
//! The real AMiner snapshot used by the paper is not redistributed, and the
//! App-Daily / App-Weekly networks are proprietary Tencent logs; BLOG is
//! large enough that an 8-method × 2-task sweep would dwarf the
//! reproduction budget. Each generator therefore builds a
//! planted-community analogue with the *same schema* (node types, edge
//! types, weighted vs unit edges, which nodes carry labels) and, for AMiner,
//! the same scale; BLOG and the App networks are scaled down by ~10× and
//! ~20× with their qualitative contrasts preserved (BLOG dense & unit
//! weighted, App sparse & weighted with weakly-correlated views). See
//! DESIGN.md §3 for the substitution argument.
//!
//! All generators are deterministic in their seed.

#![warn(missing_docs)]

pub mod aminer;
pub mod app;
pub mod blog;
pub mod commerce;
pub mod common;
pub mod dataset;

pub use aminer::{aminer_like, AminerConfig};
pub use app::{app_like, AppConfig};
pub use blog::{blog_like, BlogConfig};
pub use commerce::{commerce_like, CommerceConfig};
pub use dataset::Dataset;

/// Build all four datasets at experiment scale (Table II analogues).
pub fn all_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        aminer_like(&AminerConfig::full(), seed),
        blog_like(&BlogConfig::full(), seed ^ 0xB10C),
        app_like(&AppConfig::daily(), seed ^ 0xDA11),
        app_like(&AppConfig::weekly(), seed ^ 0x3EE7),
    ]
}

/// Build all four datasets at tiny scale (integration tests and examples).
pub fn all_datasets_tiny(seed: u64) -> Vec<Dataset> {
    vec![
        aminer_like(&AminerConfig::tiny(), seed),
        blog_like(&BlogConfig::tiny(), seed ^ 0xB10C),
        app_like(&AppConfig::daily_tiny(), seed ^ 0xDA11),
        app_like(&AppConfig::weekly_tiny(), seed ^ 0x3EE7),
    ]
}
