//! BLOG-like social network (Table II row 2), scaled ~10×.
//!
//! Schema matches the paper's BLOG dataset: users and keywords; UU
//! (friendship), UK (keyword-usage), KK (keyword-relevance) edges, all
//! unit-weighted; every user carries an interest label. The defining
//! property the paper leans on — BLOG is **dense** (≈20× the App networks)
//! and its views are **strongly correlated** (friends post common
//! keywords) — is preserved: friendships and keyword usage are driven by
//! the same planted interest groups.

use crate::common::{popularity_weights, prefix_sums, weighted_pick_prefix, EdgeSink};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transn_graph::{HetNetBuilder, Labels};

/// Size and structure knobs of the BLOG-like generator.
#[derive(Clone, Copy, Debug)]
pub struct BlogConfig {
    /// Number of users (paper: 57,753; full config: ~1/10).
    pub users: usize,
    /// Number of keywords (paper: 5,413).
    pub keywords: usize,
    /// Interest groups = label classes.
    pub groups: usize,
    /// Mean UU (friendship) edges per user.
    pub friends_per_user: f64,
    /// Mean UK edges per user.
    pub keywords_per_user: f64,
    /// Mean KK edges per keyword.
    pub relevance_per_keyword: f64,
    /// Friendship (UU) fidelity: probability a UU edge stays within the
    /// interest group. Deliberately the *noisiest* view — the paper's
    /// BLOG story (§IV-B2) is that the user–keyword view carries the
    /// transferable signal.
    pub uu_fidelity: f64,
    /// Keyword-usage (UK) fidelity — the informative view.
    pub uk_fidelity: f64,
    /// Keyword-relevance (KK) fidelity.
    pub kk_fidelity: f64,
    /// Maximum keyword-usage multiplicity: each UK edge's weight is drawn
    /// uniformly from `1..=uk_max_uses`. The paper's BLOG UK edges are
    /// usage *counts*, so values > 1 are the faithful setting; they also
    /// give the UK view a non-degenerate weight range, which is what
    /// activates the correlated walker's Eq. (4) π₂ term (Δ > 0). At the
    /// default of 1 every edge stays unit-weighted and **no extra RNG
    /// draws happen**, so all pre-existing configurations generate
    /// byte-identical networks.
    pub uk_max_uses: u32,
    /// Fraction of user labels flipped to a random class (annotation
    /// noise; see DESIGN.md §3 — BLOG's self-declared interest labels are
    /// the noisiest of the paper's datasets, which is why its absolute F1
    /// scores are so low).
    pub label_noise: f64,
}

impl BlogConfig {
    /// Experiment-scale configuration (~1/10 of Table II; density
    /// preserved).
    pub fn full() -> Self {
        BlogConfig {
            users: 5_775,
            keywords: 541,
            groups: 5,
            friends_per_user: 48.8,      // paper: UU degree 2·1.41M/57.7k
            keywords_per_user: 5.7,      // paper: 330k UK / 57.7k users
            relevance_per_keyword: 90.0, // paper: KK degree 2·244k/5.4k
            uu_fidelity: 0.45,
            uk_fidelity: 0.75,
            kk_fidelity: 0.8,
            uk_max_uses: 1,
            label_noise: 0.55,
        }
    }

    /// Out-of-core pipeline benchmark scale (ISSUE 7): ~10× the nodes of
    /// the walk-layer bench graph (`walks_snapshot`'s 40k users), which
    /// together with 10× longer walks puts ~100× the walk tokens of that
    /// bench through the episodic pipeline — the regime where a
    /// monolithic corpus is hundreds of megabytes and bounded episodes
    /// matter. The UK view is paper-dense (≈ 8 keywords per user — BLOG
    /// is the paper's *dense* network) and its edges carry usage counts
    /// (`uk_max_uses` 8), so the walks exercise the full correlated-step
    /// π₁·π₂ neighbor scan rather than the unit-weight alias shortcut.
    pub fn pipeline_scale() -> Self {
        BlogConfig {
            users: 400_000,
            keywords: 40_000,
            keywords_per_user: 8.0,
            uk_max_uses: 8,
            ..BlogConfig::tiny()
        }
    }

    /// Tiny configuration for tests.
    pub fn tiny() -> Self {
        BlogConfig {
            users: 80,
            keywords: 20,
            groups: 4,
            friends_per_user: 6.0,
            keywords_per_user: 3.0,
            relevance_per_keyword: 4.0,
            uu_fidelity: 0.7,
            uk_fidelity: 0.8,
            kk_fidelity: 0.8,
            uk_max_uses: 1,
            label_noise: 0.0,
        }
    }
}

/// Generate the BLOG-like dataset.
pub fn blog_like(cfg: &BlogConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HetNetBuilder::new();
    let t_user = b.add_node_type("user");
    let t_kw = b.add_node_type("keyword");
    let e_uu = b.add_edge_type("UU", t_user, t_user);
    let e_uk = b.add_edge_type("UK", t_user, t_kw);
    let e_kk = b.add_edge_type("KK", t_kw, t_kw);

    let users = b.add_nodes(t_user, cfg.users);
    let keywords = b.add_nodes(t_kw, cfg.keywords);

    let user_group: Vec<usize> = (0..cfg.users)
        .map(|_| rng.random_range(0..cfg.groups))
        .collect();
    let kw_group: Vec<usize> = (0..cfg.keywords).map(|i| i % cfg.groups).collect();

    let user_pop = popularity_weights(cfg.users, 0.8, &mut rng);
    let kw_pop = popularity_weights(cfg.keywords, 0.8, &mut rng);

    let mut group_user_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.groups];
    let mut group_user_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.groups];
    for (u, &g) in user_group.iter().enumerate() {
        group_user_w[g].push(user_pop[u]);
        group_user_id[g].push(u);
    }
    let mut group_kw_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.groups];
    let mut group_kw_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.groups];
    for (k, &g) in kw_group.iter().enumerate() {
        group_kw_w[g].push(kw_pop[k]);
        group_kw_id[g].push(k);
    }

    // O(log n) CDF tables for the edge loops — bit-identical picks to the
    // linear scan (see `common::weighted_pick_prefix`), but the 100×-scale
    // pipeline config draws millions of edges over 10^5-entry weight
    // arrays, where the O(n)-per-draw scan is hours of setup.
    let user_cdf = prefix_sums(&user_pop);
    let kw_cdf = prefix_sums(&kw_pop);
    let group_user_cdf: Vec<Vec<f64>> = group_user_w.iter().map(|w| prefix_sums(w)).collect();
    let group_kw_cdf: Vec<Vec<f64>> = group_kw_w.iter().map(|w| prefix_sums(w)).collect();

    let mut sink = EdgeSink::new();

    // UU friendships: half the per-user budget as each edge serves two
    // endpoints.
    let uu_target = (cfg.users as f64 * cfg.friends_per_user / 2.0) as usize;
    while sink.len() < uu_target {
        let u = weighted_pick_prefix(&user_cdf, &mut rng);
        let g = user_group[u];
        let v = if rng.random::<f64>() < cfg.uu_fidelity && group_user_id[g].len() > 1 {
            group_user_id[g][weighted_pick_prefix(&group_user_cdf[g], &mut rng)]
        } else {
            weighted_pick_prefix(&user_cdf, &mut rng)
        };
        sink.add(&mut b, users[u], users[v], e_uu, 1.0).unwrap();
    }

    // UK keyword usage.
    let uu_edges = sink.len();
    let uk_target = (cfg.users as f64 * cfg.keywords_per_user) as usize;
    while sink.len() - uu_edges < uk_target {
        let u = weighted_pick_prefix(&user_cdf, &mut rng);
        let g = user_group[u];
        let k = if rng.random::<f64>() < cfg.uk_fidelity && !group_kw_id[g].is_empty() {
            group_kw_id[g][weighted_pick_prefix(&group_kw_cdf[g], &mut rng)]
        } else {
            weighted_pick_prefix(&kw_cdf, &mut rng)
        };
        let uses = if cfg.uk_max_uses > 1 {
            rng.random_range(1..=cfg.uk_max_uses) as f32
        } else {
            1.0
        };
        sink.add(&mut b, users[u], keywords[k], e_uk, uses).unwrap();
    }

    // KK keyword relevance.
    let prev = sink.len();
    let kk_target = (cfg.keywords as f64 * cfg.relevance_per_keyword / 2.0) as usize;
    // Cap by the complete graph on keywords.
    let kk_target = kk_target.min(cfg.keywords * (cfg.keywords - 1) / 2);
    let mut stale = 0usize;
    while sink.len() - prev < kk_target && stale < 50_000 {
        let k = weighted_pick_prefix(&kw_cdf, &mut rng);
        let g = kw_group[k];
        let k2 = if rng.random::<f64>() < cfg.kk_fidelity && group_kw_id[g].len() > 1 {
            group_kw_id[g][weighted_pick_prefix(&group_kw_cdf[g], &mut rng)]
        } else {
            weighted_pick_prefix(&kw_cdf, &mut rng)
        };
        if !sink
            .add(&mut b, keywords[k], keywords[k2], e_kk, 1.0)
            .unwrap()
        {
            stale += 1;
        } else {
            stale = 0;
        }
    }

    let num_nodes = b.num_nodes();
    let net = b.build().expect("generator produced an invalid network");

    let mut labels = Labels::new(num_nodes);
    for g in 0..cfg.groups {
        labels.add_class(format!("interest-{g}"));
    }
    for (u, &g) in user_group.iter().enumerate() {
        let observed = if rng.random::<f64>() < cfg.label_noise {
            rng.random_range(0..cfg.groups) as u32
        } else {
            g as u32
        };
        labels.set(users[u], observed);
    }

    Dataset {
        name: "BLOG".into(),
        net,
        labels,
        metapath: vec!["user", "keyword", "user"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_ii() {
        let d = blog_like(&BlogConfig::tiny(), 3);
        let s = d.net.schema();
        assert_eq!(s.num_node_types(), 2);
        assert_eq!(s.num_edge_types(), 3);
        assert!(s.edge_type_by_name("UU").is_some());
        assert!(s.edge_type_by_name("UK").is_some());
        assert!(s.edge_type_by_name("KK").is_some());
    }

    #[test]
    fn every_user_is_labeled() {
        let d = blog_like(&BlogConfig::tiny(), 4);
        let user = d.net.schema().node_type_by_name("user").unwrap();
        for u in d.net.nodes_of_type(user) {
            assert!(d.labels.get(u).is_some());
        }
        let kw = d.net.schema().node_type_by_name("keyword").unwrap();
        for k in d.net.nodes_of_type(kw) {
            assert!(d.labels.get(k).is_none());
        }
    }

    #[test]
    fn full_scale_is_dense() {
        let d = blog_like(&BlogConfig::full(), 5);
        let s = d.stats();
        // Average degree around 2×(24/2 + 5.7 + …)/… — just require the
        // headline property: much denser than the App nets (> 20 avg deg).
        assert!(s.average_degree > 20.0, "avg degree {}", s.average_degree);
        // Edge-type mix ordered like the paper: UU ≫ UK > KK.
        let by_name: std::collections::HashMap<_, _> = s.edges_per_type.iter().cloned().collect();
        assert!(by_name["UU"] > by_name["UK"]);
        assert!(by_name["UK"] > by_name["KK"] / 2); // same order of magnitude
    }

    #[test]
    fn friendships_respect_groups() {
        let d = blog_like(&BlogConfig::full(), 6);
        let uu = d.net.schema().edge_type_by_name("UU").unwrap();
        let mut same = 0;
        let mut total = 0;
        for e in d.net.edges().iter().filter(|e| e.etype == uu) {
            if let (Some(a), Some(b)) = (d.labels.get(e.u), d.labels.get(e.v)) {
                total += 1;
                if a == b {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        // UU fidelity 0.45 → structural same-group rate ≈ 0.56, diluted
        // by the 55% label noise to ≈ 0.27 observed — still clearly above
        // the 0.2 chance level of 5 groups.
        assert!(frac > 0.23, "same-group friendship rate {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = blog_like(&BlogConfig::tiny(), 9);
        let b = blog_like(&BlogConfig::tiny(), 9);
        assert_eq!(a.net.edges(), b.net.edges());
    }
}
