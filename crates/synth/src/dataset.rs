//! A generated dataset: network + labels + evaluation metadata.

use transn_graph::{HetNet, Labels, NetworkStats};

/// A dataset in the shape the experiment harness consumes: the network,
/// sparse node labels for the classification task, and the meta-path the
/// paper prescribes for the Metapath2Vec baseline on this dataset
/// (§IV-A3).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name as used in the paper's tables.
    pub name: String,
    /// The heterogeneous network.
    pub net: HetNet,
    /// Class labels on the labeled node type.
    pub labels: Labels,
    /// Node-type names of the recommended meta-path (cyclic), e.g.
    /// `["author", "paper", "venue", "paper", "author"]` for AMiner.
    pub metapath: Vec<&'static str>,
}

impl Dataset {
    /// Table II-style statistics for this dataset.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats::compute(self.name.clone(), &self.net, Some(&self.labels))
    }
}
