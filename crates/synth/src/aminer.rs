//! AMiner-like academic network (Table II row 1).
//!
//! Schema and scale match the paper's AMiner snapshot: authors, papers,
//! venues; AA (co-authorship), AP (authorship), PP (citation), PV
//! (publication) edges, all unit-weighted; every paper carries a research
//! topic label. The planted structure ties all four views to the topic
//! communities so multi-view transfer carries signal.

use crate::common::{popularity_weights, prefix_sums, weighted_pick_prefix, EdgeSink};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transn_graph::{HetNetBuilder, Labels};

/// Size and structure knobs of the AMiner-like generator.
#[derive(Clone, Copy, Debug)]
pub struct AminerConfig {
    /// Number of authors (paper: 2,161).
    pub authors: usize,
    /// Number of papers (paper: 2,555).
    pub papers: usize,
    /// Number of venues (paper: 58).
    pub venues: usize,
    /// Research topics = label classes.
    pub topics: usize,
    /// Mean authors per paper (drives AP ≈ papers × this).
    pub authors_per_paper: f64,
    /// Mean citations per paper (drives PP).
    pub citations_per_paper: f64,
    /// Per-view topic fidelities: probability an edge of that type follows
    /// the planted topic structure rather than popularity alone. Views are
    /// deliberately *not* equally informative — the paper's motivating
    /// observation (Fig. 2, §III-B) is that "the information inside each
    /// view could be biased and inaccurate", and the cross-view algorithm
    /// exists to transfer signal from informative views (here AP, and AA
    /// which is derived from co-authorship) into noisy ones (PP/PV)
    /// through their common nodes.
    pub ap_fidelity: f64,
    /// Citation (PP) fidelity — noisy by design.
    pub pp_fidelity: f64,
    /// Publication (PV) fidelity — noisy by design.
    pub pv_fidelity: f64,
    /// Fraction of labels flipped to a random class — the irreducible
    /// annotation noise that keeps real-data F1 scores far from 1.0 (see
    /// DESIGN.md §3).
    pub label_noise: f64,
}

impl AminerConfig {
    /// Paper-scale configuration (AMiner is small enough to match 1:1).
    pub fn full() -> Self {
        AminerConfig {
            authors: 2_161,
            papers: 2_555,
            venues: 58,
            topics: 8,
            authors_per_paper: 2.4,
            citations_per_paper: 2.1,
            ap_fidelity: 0.85,
            pp_fidelity: 0.35,
            pv_fidelity: 0.45,
            label_noise: 0.05,
        }
    }

    /// The paper-scale schema multiplied by `factor` (structure knobs
    /// unchanged): the scale axis of the unified bench harness. At
    /// `factor` ≈ 200 the academic network crosses a million nodes while
    /// the O(log n) CDF draws keep generation linear-ish in the edge
    /// count.
    pub fn scaled(factor: usize) -> Self {
        let f = factor.max(1);
        AminerConfig {
            authors: 2_161 * f,
            papers: 2_555 * f,
            venues: 58 * f,
            ..AminerConfig::full()
        }
    }

    /// Tiny configuration for tests.
    pub fn tiny() -> Self {
        AminerConfig {
            authors: 60,
            papers: 80,
            venues: 6,
            topics: 4,
            authors_per_paper: 2.0,
            citations_per_paper: 1.5,
            ap_fidelity: 0.85,
            pp_fidelity: 0.6,
            pv_fidelity: 0.7,
            label_noise: 0.0,
        }
    }
}

/// Generate the AMiner-like dataset.
pub fn aminer_like(cfg: &AminerConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HetNetBuilder::new();
    let t_author = b.add_node_type("author");
    let t_paper = b.add_node_type("paper");
    let t_venue = b.add_node_type("venue");
    let e_aa = b.add_edge_type("AA", t_author, t_author);
    let e_ap = b.add_edge_type("AP", t_author, t_paper);
    let e_pp = b.add_edge_type("PP", t_paper, t_paper);
    let e_pv = b.add_edge_type("PV", t_paper, t_venue);

    let authors = b.add_nodes(t_author, cfg.authors);
    let papers = b.add_nodes(t_paper, cfg.papers);
    let venues = b.add_nodes(t_venue, cfg.venues);

    // Topic assignments. Venues and authors are topic-pure generators;
    // papers inherit their topic label.
    let author_topic: Vec<usize> = (0..cfg.authors)
        .map(|_| rng.random_range(0..cfg.topics))
        .collect();
    let venue_topic: Vec<usize> = (0..cfg.venues).map(|i| i % cfg.topics).collect();
    let paper_topic: Vec<usize> = (0..cfg.papers)
        .map(|_| rng.random_range(0..cfg.topics))
        .collect();

    // Heavy-tailed author productivity and paper citability.
    let author_pop = popularity_weights(cfg.authors, 0.9, &mut rng);
    let paper_pop = popularity_weights(cfg.papers, 0.9, &mut rng);

    // Per-topic author weight tables for fast topical sampling.
    let mut topic_author_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.topics];
    let mut topic_author_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.topics];
    for (a, &t) in author_topic.iter().enumerate() {
        topic_author_w[t].push(author_pop[a]);
        topic_author_id[t].push(a);
    }
    let mut topic_paper_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.topics];
    let mut topic_paper_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.topics];
    for (p, &t) in paper_topic.iter().enumerate() {
        topic_paper_w[t].push(paper_pop[p]);
        topic_paper_id[t].push(p);
    }

    // O(log n) CDF tables for the edge loops — bit-identical picks to the
    // linear scan (see `common::weighted_pick_prefix`); at `scaled`
    // factors the draws run over 10^5–10^6-entry weight arrays where the
    // O(n)-per-draw scan would dominate generation.
    let author_cdf = prefix_sums(&author_pop);
    let paper_cdf = prefix_sums(&paper_pop);
    let topic_author_cdf: Vec<Vec<f64>> = topic_author_w.iter().map(|w| prefix_sums(w)).collect();
    let topic_paper_cdf: Vec<Vec<f64>> = topic_paper_w.iter().map(|w| prefix_sums(w)).collect();

    let mut sink = EdgeSink::new();

    // AP (authorship) + AA (co-authorship among a paper's authors).
    for (p, &topic) in paper_topic.iter().enumerate() {
        // 1..=4 authors, mean ≈ cfg.authors_per_paper.
        let k = sample_team_size(cfg.authors_per_paper, &mut rng);
        let mut team: Vec<usize> = Vec::with_capacity(k);
        for _ in 0..k {
            let a = if rng.random::<f64>() < cfg.ap_fidelity && !topic_author_id[topic].is_empty() {
                topic_author_id[topic][weighted_pick_prefix(&topic_author_cdf[topic], &mut rng)]
            } else {
                weighted_pick_prefix(&author_cdf, &mut rng)
            };
            if !team.contains(&a) {
                team.push(a);
            }
        }
        for &a in &team {
            sink.add(&mut b, authors[a], papers[p], e_ap, 1.0).unwrap();
        }
        for x in 0..team.len() {
            for y in (x + 1)..team.len() {
                sink.add(&mut b, authors[team[x]], authors[team[y]], e_aa, 1.0)
                    .unwrap();
            }
        }
    }

    // PP (citation): topic-preferential, popularity-weighted.
    for (p, &topic) in paper_topic.iter().enumerate() {
        let n_cites = sample_count(cfg.citations_per_paper, &mut rng);
        for _ in 0..n_cites {
            let q = if rng.random::<f64>() < cfg.pp_fidelity && topic_paper_id[topic].len() > 1 {
                topic_paper_id[topic][weighted_pick_prefix(&topic_paper_cdf[topic], &mut rng)]
            } else {
                weighted_pick_prefix(&paper_cdf, &mut rng)
            };
            sink.add(&mut b, papers[p], papers[q], e_pp, 1.0).unwrap();
        }
    }

    // PV (publication): exactly one venue per paper, usually of the
    // paper's topic.
    let venues_of_topic: Vec<Vec<usize>> = (0..cfg.topics)
        .map(|t| {
            (0..cfg.venues)
                .filter(|&v| venue_topic[v] == t)
                .collect::<Vec<_>>()
        })
        .collect();
    for (p, &topic) in paper_topic.iter().enumerate() {
        let v = if rng.random::<f64>() < cfg.pv_fidelity && !venues_of_topic[topic].is_empty() {
            venues_of_topic[topic][rng.random_range(0..venues_of_topic[topic].len())]
        } else {
            rng.random_range(0..cfg.venues)
        };
        sink.add(&mut b, papers[p], venues[v], e_pv, 1.0).unwrap();
    }

    let num_nodes = b.num_nodes();
    let net = b.build().expect("generator produced an invalid network");

    let mut labels = Labels::new(num_nodes);
    for t in 0..cfg.topics {
        labels.add_class(format!("topic-{t}"));
    }
    for (p, &t) in paper_topic.iter().enumerate() {
        let observed = if rng.random::<f64>() < cfg.label_noise {
            rng.random_range(0..cfg.topics) as u32
        } else {
            t as u32
        };
        labels.set(papers[p], observed);
    }

    Dataset {
        name: "AMiner".into(),
        net,
        labels,
        metapath: vec!["author", "paper", "venue", "paper", "author"],
    }
}

/// Team size `1 + Binomial(3, (mean−1)/3)` over `1..=4`, exact mean.
fn sample_team_size(mean: f64, rng: &mut StdRng) -> usize {
    let p = ((mean - 1.0) / 3.0).clamp(0.0, 1.0);
    1 + (0..3).filter(|_| rng.random::<f64>() < p).count()
}

/// Non-negative count with the given mean (rounded stochastic).
fn sample_count(mean: f64, rng: &mut StdRng) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - base as f64;
    base + usize::from(rng.random::<f64>() < frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table_ii_shape() {
        let d = aminer_like(&AminerConfig::full(), 42);
        let s = d.stats();
        assert_eq!(s.nodes_per_type[0], ("author".to_string(), 2_161));
        assert_eq!(s.nodes_per_type[1], ("paper".to_string(), 2_555));
        assert_eq!(s.nodes_per_type[2], ("venue".to_string(), 58));
        // Every paper labeled.
        assert_eq!(s.num_labeled, 2_555);
        // Edge counts in the right ballpark (±40% of Table II).
        let by_name: std::collections::HashMap<_, _> = s.edges_per_type.iter().cloned().collect();
        let close =
            |got: usize, want: usize| (got as f64 - want as f64).abs() / (want as f64) < 0.4;
        assert!(close(by_name["AP"], 6_072), "AP = {}", by_name["AP"]);
        assert!(close(by_name["PP"], 5_332), "PP = {}", by_name["PP"]);
        assert_eq!(by_name["PV"], 2_555);
        assert!(close(by_name["AA"], 3_836), "AA = {}", by_name["AA"]);
    }

    #[test]
    fn four_views_exist_and_signature_types_hold() {
        let d = aminer_like(&AminerConfig::tiny(), 1);
        let views = d.net.views();
        assert_eq!(views.len(), 4);
        use transn_graph::ViewKind;
        assert_eq!(views[0].kind(), ViewKind::Homo); // AA
        assert_eq!(views[1].kind(), ViewKind::Heter); // AP
        assert_eq!(views[2].kind(), ViewKind::Homo); // PP
        assert_eq!(views[3].kind(), ViewKind::Heter); // PV
    }

    #[test]
    fn citations_prefer_same_topic() {
        let d = aminer_like(&AminerConfig::full(), 7);
        let pp = d.net.schema().edge_type_by_name("PP").unwrap();
        let mut same = 0usize;
        let mut total = 0usize;
        for e in d.net.edges().iter().filter(|e| e.etype == pp) {
            let (tu, tv) = (d.labels.get(e.u), d.labels.get(e.v));
            if let (Some(a), Some(b)) = (tu, tv) {
                total += 1;
                if a == b {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        // PP fidelity 0.35 over 8 topics → expected rate ≈ 0.35 + 0.65/8.
        assert!(frac > 0.3, "same-topic citation rate {frac}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = aminer_like(&AminerConfig::tiny(), 5);
        let b = aminer_like(&AminerConfig::tiny(), 5);
        assert_eq!(a.net.num_edges(), b.net.num_edges());
        assert_eq!(a.net.edges(), b.net.edges());
        let c = aminer_like(&AminerConfig::tiny(), 6);
        assert_ne!(a.net.edges(), c.net.edges());
    }

    #[test]
    fn all_edges_unit_weight() {
        let d = aminer_like(&AminerConfig::tiny(), 2);
        assert!(d.net.edges().iter().all(|e| e.weight == 1.0));
    }
}
