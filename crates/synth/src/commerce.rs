//! Commerce/recommendation network — the million-node scale scenario.
//!
//! Unlike the four Table-II analogues, this generator has no counterpart
//! in the paper: it exists to exercise the scale path (ROADMAP's
//! million-node item) on a schema *wider* than anything in the paper —
//! four node types and four edge types — so the setup stage builds more
//! views, more alias families, and a larger global CSR per node than the
//! two/three-type networks do.
//!
//! Schema: users buy items (UI, quantity-weighted), items co-occur in
//! baskets (II "also-bought"), every item sits in exactly one catalog
//! category (IC) and carries one brand (IB). Items are labeled with their
//! market *segment* (a coarse grouping of categories), planted through
//! all four views: users have a preferred segment driving UI, co-purchase
//! stays intra-segment with its own fidelity, and brands are
//! segment-aligned. Every preset generates in O(E log n) thanks to the
//! precomputed CDF tables of [`crate::common::weighted_pick_prefix`].

use crate::common::{lognormal, popularity_weights, prefix_sums, weighted_pick_prefix, EdgeSink};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transn_graph::{HetNetBuilder, Labels};

/// Size and structure knobs of the commerce generator.
#[derive(Clone, Copy, Debug)]
pub struct CommerceConfig {
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Number of catalog categories.
    pub categories: usize,
    /// Number of brands.
    pub brands: usize,
    /// Market segments = label classes (categories and brands are
    /// partitioned across segments round-robin).
    pub segments: usize,
    /// Mean UI (purchase) edges per user.
    pub purchases_per_user: f64,
    /// Mean II (also-bought) edges per item.
    pub cobuys_per_item: f64,
    /// Probability a purchase follows the user's preferred segment.
    pub ui_fidelity: f64,
    /// Probability a co-purchase stays within the item's segment.
    pub ii_fidelity: f64,
    /// Probability an item's brand matches its segment.
    pub ib_fidelity: f64,
    /// Fraction of item labels flipped to a random segment.
    pub label_noise: f64,
}

impl CommerceConfig {
    /// Dev-tier store: ≈ 43k nodes — the smallest scale the harness
    /// times, sized to run in seconds even in debug builds.
    pub fn dev() -> Self {
        CommerceConfig {
            users: 30_000,
            items: 12_000,
            categories: 400,
            brands: 800,
            segments: 8,
            purchases_per_user: 3.0,
            cobuys_per_item: 1.5,
            ui_fidelity: 0.7,
            ii_fidelity: 0.6,
            ib_fidelity: 0.8,
            label_noise: 0.1,
        }
    }

    /// Mid-tier store: ≈ 430k nodes, the PR 7 pipeline scale.
    pub fn mid() -> Self {
        CommerceConfig {
            users: 300_000,
            items: 120_000,
            categories: 4_000,
            brands: 8_000,
            ..CommerceConfig::dev()
        }
    }

    /// Million-node store: ≈ 1.0M nodes, ~3M edges — the ROADMAP's
    /// million-node pipeline scenario.
    pub fn million() -> Self {
        CommerceConfig {
            users: 700_000,
            items: 280_000,
            categories: 7_000,
            brands: 14_000,
            ..CommerceConfig::dev()
        }
    }

    /// XL store: ≈ 4.0M nodes — the top of the harness's scale axis
    /// (setup-phase timing; the full pipeline runs at
    /// [`CommerceConfig::million`]).
    pub fn xl() -> Self {
        CommerceConfig {
            users: 2_800_000,
            items: 1_120_000,
            categories: 28_000,
            brands: 56_000,
            ..CommerceConfig::dev()
        }
    }

    /// Tiny store for tests.
    pub fn tiny() -> Self {
        CommerceConfig {
            users: 120,
            items: 80,
            categories: 16,
            brands: 12,
            segments: 4,
            purchases_per_user: 4.0,
            cobuys_per_item: 2.0,
            ui_fidelity: 0.8,
            ii_fidelity: 0.7,
            ib_fidelity: 0.9,
            label_noise: 0.0,
        }
    }

    /// Total node count of this configuration.
    pub fn num_nodes(&self) -> usize {
        self.users + self.items + self.categories + self.brands
    }
}

/// Generate the commerce dataset.
pub fn commerce_like(cfg: &CommerceConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HetNetBuilder::new();
    let t_user = b.add_node_type("user");
    let t_item = b.add_node_type("item");
    let t_cat = b.add_node_type("category");
    let t_brand = b.add_node_type("brand");
    let e_ui = b.add_edge_type("UI", t_user, t_item);
    let e_ii = b.add_edge_type("II", t_item, t_item);
    let e_ic = b.add_edge_type("IC", t_item, t_cat);
    let e_ib = b.add_edge_type("IB", t_item, t_brand);

    let users = b.add_nodes(t_user, cfg.users);
    let items = b.add_nodes(t_item, cfg.items);
    let cats = b.add_nodes(t_cat, cfg.categories);
    let brands = b.add_nodes(t_brand, cfg.brands);

    // Segment structure: categories and brands are partitioned
    // round-robin; every item draws a category and inherits its segment;
    // users prefer one segment.
    let cat_segment: Vec<usize> = (0..cfg.categories).map(|c| c % cfg.segments).collect();
    let brand_segment: Vec<usize> = (0..cfg.brands).map(|b| b % cfg.segments).collect();
    let item_cat: Vec<usize> = (0..cfg.items)
        .map(|_| rng.random_range(0..cfg.categories))
        .collect();
    let item_segment: Vec<usize> = item_cat.iter().map(|&c| cat_segment[c]).collect();
    let user_segment: Vec<usize> = (0..cfg.users)
        .map(|_| rng.random_range(0..cfg.segments))
        .collect();

    // Heavy-tailed item popularity, with per-segment views for the
    // fidelity-conditional draws.
    let item_pop = popularity_weights(cfg.items, 0.9, &mut rng);
    let mut seg_item_w: Vec<Vec<f64>> = vec![Vec::new(); cfg.segments];
    let mut seg_item_id: Vec<Vec<usize>> = vec![Vec::new(); cfg.segments];
    for (i, &s) in item_segment.iter().enumerate() {
        seg_item_w[s].push(item_pop[i]);
        seg_item_id[s].push(i);
    }
    let item_cdf = prefix_sums(&item_pop);
    let seg_item_cdf: Vec<Vec<f64>> = seg_item_w.iter().map(|w| prefix_sums(w)).collect();

    // Brand pools per segment for the IB draws.
    let seg_brand_id: Vec<Vec<usize>> = (0..cfg.segments)
        .map(|s| {
            (0..cfg.brands)
                .filter(|&b| brand_segment[b] == s)
                .collect::<Vec<_>>()
        })
        .collect();

    let mut sink = EdgeSink::new();

    // UI purchases: quantity-weighted, segment-preferential.
    let ui_target = (cfg.users as f64 * cfg.purchases_per_user) as usize;
    while sink.len() < ui_target {
        let u = rng.random_range(0..cfg.users);
        let seg = user_segment[u];
        let (i, matched) = if rng.random::<f64>() < cfg.ui_fidelity && !seg_item_id[seg].is_empty()
        {
            (
                seg_item_id[seg][weighted_pick_prefix(&seg_item_cdf[seg], &mut rng)],
                true,
            )
        } else {
            (weighted_pick_prefix(&item_cdf, &mut rng), false)
        };
        let mu = if matched { 1.4 } else { 0.4 };
        let qty = lognormal(&mut rng, mu, 0.6, 40.0).round().max(1.0);
        sink.add(&mut b, users[u], items[i], e_ui, qty).unwrap();
    }

    // II also-bought: popularity-weighted with intra-segment preference.
    let ui_edges = sink.len();
    let ii_target = (cfg.items as f64 * cfg.cobuys_per_item / 2.0) as usize;
    let mut stale = 0usize;
    while sink.len() - ui_edges < ii_target && stale < 50_000 {
        let i = weighted_pick_prefix(&item_cdf, &mut rng);
        let seg = item_segment[i];
        let j = if rng.random::<f64>() < cfg.ii_fidelity && seg_item_id[seg].len() > 1 {
            seg_item_id[seg][weighted_pick_prefix(&seg_item_cdf[seg], &mut rng)]
        } else {
            weighted_pick_prefix(&item_cdf, &mut rng)
        };
        if !sink.add(&mut b, items[i], items[j], e_ii, 1.0).unwrap() {
            stale += 1;
        } else {
            stale = 0;
        }
    }

    // IC: exactly one category per item (its planted one). IB: one brand,
    // segment-aligned with probability `ib_fidelity`.
    for (i, &c) in item_cat.iter().enumerate() {
        sink.add(&mut b, items[i], cats[c], e_ic, 1.0).unwrap();
        let seg = item_segment[i];
        let brand = if rng.random::<f64>() < cfg.ib_fidelity && !seg_brand_id[seg].is_empty() {
            seg_brand_id[seg][rng.random_range(0..seg_brand_id[seg].len())]
        } else {
            rng.random_range(0..cfg.brands)
        };
        sink.add(&mut b, items[i], brands[brand], e_ib, 1.0)
            .unwrap();
    }

    let num_nodes = b.num_nodes();
    let net = b.build().expect("generator produced an invalid network");

    let mut labels = Labels::new(num_nodes);
    for s in 0..cfg.segments {
        labels.add_class(format!("segment-{s}"));
    }
    for (i, &s) in item_segment.iter().enumerate() {
        let observed = if rng.random::<f64>() < cfg.label_noise {
            rng.random_range(0..cfg.segments) as u32
        } else {
            s as u32
        };
        labels.set(items[i], observed);
    }

    Dataset {
        name: "Commerce".into(),
        net,
        labels,
        metapath: vec!["user", "item", "category", "item", "user"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_node_types_and_four_views() {
        let d = commerce_like(&CommerceConfig::tiny(), 1);
        let s = d.net.schema();
        assert_eq!(s.num_node_types(), 4);
        assert_eq!(s.num_edge_types(), 4);
        use transn_graph::ViewKind;
        let views = d.net.views();
        assert_eq!(views[0].kind(), ViewKind::Heter); // UI
        assert_eq!(views[1].kind(), ViewKind::Homo); // II
        assert_eq!(views[2].kind(), ViewKind::Heter); // IC
        assert_eq!(views[3].kind(), ViewKind::Heter); // IB
    }

    #[test]
    fn every_item_labeled_and_only_items() {
        let d = commerce_like(&CommerceConfig::tiny(), 2);
        let item = d.net.schema().node_type_by_name("item").unwrap();
        for i in d.net.nodes_of_type(item) {
            assert!(d.labels.get(i).is_some());
        }
        let user = d.net.schema().node_type_by_name("user").unwrap();
        for u in d.net.nodes_of_type(user) {
            assert!(d.labels.get(u).is_none());
        }
    }

    #[test]
    fn every_item_has_category_and_brand() {
        let d = commerce_like(&CommerceConfig::tiny(), 3);
        let (ic, ib) = (
            d.net.schema().edge_type_by_name("IC").unwrap(),
            d.net.schema().edge_type_by_name("IB").unwrap(),
        );
        let n_ic = d.net.edges().iter().filter(|e| e.etype == ic).count();
        let n_ib = d.net.edges().iter().filter(|e| e.etype == ib).count();
        assert_eq!(n_ic, 80);
        assert_eq!(n_ib, 80);
    }

    #[test]
    fn purchases_are_quantity_weighted() {
        let d = commerce_like(&CommerceConfig::tiny(), 4);
        let ui = d.net.schema().edge_type_by_name("UI").unwrap();
        let distinct: std::collections::HashSet<u32> = d
            .net
            .edges()
            .iter()
            .filter(|e| e.etype == ui)
            .map(|e| e.weight.to_bits())
            .collect();
        assert!(
            distinct.len() > 3,
            "got {} distinct weights",
            distinct.len()
        );
    }

    #[test]
    fn purchases_prefer_user_segment() {
        let d = commerce_like(&CommerceConfig::dev(), 5);
        // Structural check through labels: co-purchased items share a
        // segment more often than the 1/segments chance level.
        let ii = d.net.schema().edge_type_by_name("II").unwrap();
        let mut same = 0usize;
        let mut total = 0usize;
        for e in d.net.edges().iter().filter(|e| e.etype == ii) {
            if let (Some(a), Some(b)) = (d.labels.get(e.u), d.labels.get(e.v)) {
                total += 1;
                if a == b {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.3, "same-segment co-purchase rate {frac}");
    }

    #[test]
    fn preset_node_counts() {
        assert!((40_000..60_000).contains(&CommerceConfig::dev().num_nodes()));
        assert!((400_000..500_000).contains(&CommerceConfig::mid().num_nodes()));
        assert!(CommerceConfig::million().num_nodes() >= 1_000_000);
        assert!(CommerceConfig::xl().num_nodes() >= 4_000_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = commerce_like(&CommerceConfig::tiny(), 8);
        let b = commerce_like(&CommerceConfig::tiny(), 8);
        assert_eq!(a.net.edges(), b.net.edges());
        let c = commerce_like(&CommerceConfig::tiny(), 9);
        assert_ne!(a.net.edges(), c.net.edges());
    }
}
