//! **TransN** — Heterogeneous Network Representation Learning by
//! Translating Node Embeddings (ICDE 2020), reproduced in pure Rust.
//!
//! TransN is an unsupervised multi-view embedding framework for
//! heterogeneous networks. It separates the network into one view per
//! *edge type* (so views never contain isolated nodes), learns
//! view-specific embeddings inside each view with a biased correlated
//! random walk + skip-gram objective (§III-A), and transfers information
//! across views by *translating* the embeddings of common nodes through
//! trainable encoder stacks, trained with dual-learning translation and
//! reconstruction tasks (§III-B). The final embedding of a node is the
//! average of its view-specific embeddings.
//!
//! # Quickstart
//!
//! ```
//! use transn_graph::HetNetBuilder;
//! use transn::{TransN, TransNConfig};
//!
//! // A toy academic network: authors write papers, papers cite papers.
//! let mut b = HetNetBuilder::new();
//! let author = b.add_node_type("author");
//! let paper = b.add_node_type("paper");
//! let writes = b.add_edge_type("writes", author, paper);
//! let cites = b.add_edge_type("cites", paper, paper);
//! let a: Vec<_> = (0..4).map(|_| b.add_node(author)).collect();
//! let p: Vec<_> = (0..4).map(|_| b.add_node(paper)).collect();
//! for i in 0..4 {
//!     b.add_edge(a[i], p[i], writes, 1.0).unwrap();
//!     b.add_edge(a[i], p[(i + 1) % 4], writes, 1.0).unwrap();
//! }
//! b.add_edge(p[0], p[1], cites, 1.0).unwrap();
//! b.add_edge(p[2], p[3], cites, 1.0).unwrap();
//! let net = b.build().unwrap();
//!
//! let cfg = TransNConfig::for_tests();
//! let embeddings = TransN::new(&net, cfg).train();
//! assert_eq!(embeddings.num_nodes(), net.num_nodes());
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod config;
pub mod cross_view;
pub mod fusion;
pub mod single_view;
pub mod trainer;

pub use ablation::Variant;
pub use config::TransNConfig;
pub use cross_view::EmbSlot;
pub use trainer::{TrainStats, TransN};
pub use transn_sgns::{Determinism, Parallelism};
pub use transn_walks::EpisodeConfig;
