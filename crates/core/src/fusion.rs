//! Final embedding fusion (§III-C): "the final embedding of each node is
//! the average of its view-specific embeddings" (views weighted equally,
//! since TransN targets general downstream tasks).

use crate::single_view::SingleView;
use transn_graph::{HetNet, NodeEmbeddings, NodeId};
use transn_nn::kernels;

/// Average each node's view-specific embeddings into the final table
/// (Algorithm 1 lines 13–14). Nodes belonging to no view (no incident
/// edges of any type) keep the zero vector.
pub fn fuse(net: &HetNet, views: &[SingleView], dim: usize) -> NodeEmbeddings {
    let mut out = NodeEmbeddings::zeros(net.num_nodes(), dim);
    let mut counts = vec![0u32; net.num_nodes()];
    for sv in views {
        for l in 0..sv.view.num_nodes() as u32 {
            let g = sv.view.global(l);
            let emb = sv.model.embedding(l);
            kernels::axpy(out.get_mut(g), 1.0, emb);
            counts[g.index()] += 1;
        }
    }
    for (n, &c) in counts.iter().enumerate() {
        if c > 1 {
            kernels::scale(out.get_mut(NodeId::from_index(n)), 1.0 / c as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransNConfig;
    use transn_graph::HetNetBuilder;

    #[test]
    fn fusion_averages_across_views() {
        // Node 0 appears in two views; node 2 only in one; node 3 in none.
        let mut b = HetNetBuilder::new();
        let t = b.add_node_type("t");
        let e1 = b.add_edge_type("e1", t, t);
        let e2 = b.add_edge_type("e2", t, t);
        let n: Vec<_> = (0..4).map(|_| b.add_node(t)).collect();
        b.add_edge(n[0], n[1], e1, 1.0).unwrap();
        b.add_edge(n[0], n[2], e2, 1.0).unwrap();
        let net = b.build().unwrap();
        let views = net.views();
        let cfg = TransNConfig::for_tests();
        let mut svs: Vec<SingleView> = views
            .iter()
            .enumerate()
            .map(|(i, v)| SingleView::new(v.clone(), &cfg, i))
            .collect();

        // Overwrite embeddings with known values.
        for sv in &mut svs {
            for l in 0..sv.view.num_nodes() as u32 {
                let g = sv.view.global(l);
                let fill = (g.0 + 1) as f32 * if sv.view.etype().0 == 0 { 1.0 } else { 10.0 };
                for v in sv.model.embedding_mut(l) {
                    *v = fill;
                }
            }
        }
        let fused = fuse(&net, &svs, cfg.dim);
        // Node 0: (1 + 10) / 2 = 5.5.
        assert!((fused.get(n[0])[0] - 5.5).abs() < 1e-6);
        // Node 1: only view e1 → 2.0.
        assert!((fused.get(n[1])[0] - 2.0).abs() < 1e-6);
        // Node 2: only view e2 → 30.0.
        assert!((fused.get(n[2])[0] - 30.0).abs() < 1e-6);
        // Node 3: isolated → zero.
        assert_eq!(fused.get(n[3]), vec![0.0; cfg.dim].as_slice());
    }
}
