//! The single-view algorithm (§III-A): per-view skip-gram training over
//! biased correlated random walks, with Definition-6 context windows.

use crate::config::TransNConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use transn_graph::View;
use transn_sgns::{
    train_epoch_episodic, window_for_view, EpisodicState, NoiseMode, NoiseTable, SgnsConfig,
    SgnsModel, TrainScratch,
};
use transn_walks::{CorrelatedWalker, SimpleWalker, WalkConfig, WalkCorpus};

/// One view of the network together with its view-specific embedding model
/// (`n̄_i` for every node `n ∈ V_i`).
#[derive(Clone, Debug)]
pub struct SingleView {
    /// The view `φ_i` (owns its node set and local adjacency).
    pub view: View,
    /// The skip-gram model holding the view-specific embeddings.
    pub model: SgnsModel,
    /// Definition-6 window: 1 on homo-views, 2 on heter-views.
    window: usize,
    /// Reusable flat walk arena: cleared and refilled every iteration, so
    /// warmed iterations regenerate the corpus without heap allocation.
    /// Only the monolithic schedule touches it — the episodic path keeps
    /// its arenas inside `episodic`.
    corpus: WalkCorpus,
    /// Reusable SGNS training workspace (shard pre-pass + pair scratch).
    scratch: TrainScratch,
    /// Persistent episodic pipeline state (episode plan, arena pool, noise
    /// accumulator); unused when `cfg.episode` is disabled.
    episodic: EpisodicState,
    /// Cached correlated-walk task list `(start, walks)`; built lazily,
    /// reused across iterations (it depends only on view degrees).
    biased_tasks: Vec<(u32, usize)>,
    /// Cached simple-walk task list (one task per walk of the budget).
    simple_tasks: Vec<u32>,
}

impl SingleView {
    /// Initialize the view-specific model.
    pub fn new(view: View, cfg: &TransNConfig, view_index: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (view_index as u64) << 32);
        let model = SgnsModel::new(view.num_nodes(), cfg.dim, &mut rng);
        let window = window_for_view(view.kind());
        SingleView {
            view,
            model,
            window,
            corpus: WalkCorpus::new(),
            scratch: TrainScratch::default(),
            episodic: EpisodicState::new(cfg.episode.episodes_in_flight),
            biased_tasks: Vec::new(),
            simple_tasks: Vec::new(),
        }
    }

    /// The Definition-6 context window of this view.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Highest resident walk-corpus bytes this view has held: the episodic
    /// arena-pool high-water mark, or the monolithic arena reservation when
    /// the pipeline is disabled (DESIGN.md §13).
    pub fn peak_corpus_bytes(&self) -> usize {
        self.episodic
            .peak_corpus_bytes()
            .max(self.corpus.heap_bytes())
    }

    /// One iteration of the single-view algorithm (Algorithm 1 lines 3–7):
    /// sample a fresh corpus and run one SGNS pass over it. Returns the
    /// mean skip-gram pair loss.
    pub fn train_iteration(&mut self, cfg: &TransNConfig, iteration: usize) -> f32 {
        if self.view.num_edges() == 0 {
            return 0.0;
        }
        let walk_cfg = WalkConfig {
            // Fresh randomness every iteration, still deterministic.
            seed: cfg.walk.seed ^ ((iteration as u64 + 1) * 0x9E37_79B9),
            ..cfg.walk
        };
        let sgns_cfg = SgnsConfig {
            dim: cfg.dim,
            negatives: cfg.negatives,
            lr0: cfg.lr_single,
            min_lr_frac: 1e-3,
            window: self.window,
            seed: cfg.seed ^ (iteration as u64 + 99),
            parallelism: cfg.parallelism,
            episode: cfg.episode,
        };
        if cfg.episode.enabled() {
            return self.train_iteration_episodic(cfg, walk_cfg, &sgns_cfg);
        }
        if cfg.variant.uses_biased_walks() {
            CorrelatedWalker::new(&self.view, walk_cfg).generate_into(&mut self.corpus)
        } else {
            // Table V ablation: uniform walks, random starts
            // (`TransN-With-Simple-Walk`).
            SimpleWalker::new(&self.view, walk_cfg).generate_into(&mut self.corpus)
        };
        if self.corpus.is_empty() {
            return 0.0;
        }
        let noise = NoiseTable::from_corpus(&self.corpus, self.view.num_nodes());
        self.model
            .train_corpus_ws(&self.corpus, &noise, &sgns_cfg, &mut self.scratch)
    }

    /// Episodic variant of the single-view pass (DESIGN.md §13): the walk
    /// epoch is cut into `cfg.episode.episode_walks`-sized episodes and
    /// pipelined through the view's double-buffered arena pool. Global
    /// noise mode keeps the noise distribution and lr schedule exact, so
    /// Strict runs are bit-identical for any episode size.
    fn train_iteration_episodic(
        &mut self,
        cfg: &TransNConfig,
        walk_cfg: WalkConfig,
        sgns_cfg: &SgnsConfig,
    ) -> f32 {
        let num_nodes = self.view.num_nodes();
        if cfg.variant.uses_biased_walks() {
            let walker = CorrelatedWalker::new(&self.view, walk_cfg);
            if self.biased_tasks.is_empty() {
                self.biased_tasks = walker.degree_tasks();
            }
            let tasks = &self.biased_tasks;
            train_epoch_episodic(
                &mut self.model,
                num_nodes,
                tasks.len(),
                |i| tasks[i].1,
                |range, arena| walker.generate_task_range_into(tasks, range, arena),
                sgns_cfg,
                NoiseMode::Global,
                &mut self.episodic,
            )
        } else {
            let walker = SimpleWalker::new(&self.view, walk_cfg);
            if self.simple_tasks.is_empty() {
                self.simple_tasks = walker.walk_tasks();
            }
            let tasks = &self.simple_tasks;
            train_epoch_episodic(
                &mut self.model,
                num_nodes,
                tasks.len(),
                |_| 1,
                |range, arena| walker.generate_task_range_into(tasks, range, arena),
                sgns_cfg,
                NoiseMode::Global,
                &mut self.episodic,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use transn_graph::{HetNetBuilder, ViewKind};

    fn ratings_net() -> transn_graph::HetNet {
        let mut b = HetNetBuilder::new();
        let r = b.add_node_type("reader");
        let bk = b.add_node_type("book");
        let e = b.add_edge_type("rates", r, bk);
        let readers: Vec<_> = (0..6).map(|_| b.add_node(r)).collect();
        let books: Vec<_> = (0..4).map(|_| b.add_node(bk)).collect();
        // Two clusters: readers 0–2 like books 0–1, readers 3–5 like 2–3.
        for (ri, &reader) in readers.iter().enumerate() {
            let base = if ri < 3 { 0 } else { 2 };
            b.add_edge(reader, books[base], e, 5.0).unwrap();
            b.add_edge(reader, books[base + 1], e, 4.0).unwrap();
            // Weak cross-cluster link to keep the view connected.
            if ri == 2 {
                b.add_edge(reader, books[2], e, 1.0).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn heter_view_gets_window_two() {
        let net = ratings_net();
        let views = net.views();
        let cfg = TransNConfig::for_tests();
        let sv = SingleView::new(views[0].clone(), &cfg, 0);
        assert_eq!(sv.view.kind(), ViewKind::Heter);
        assert_eq!(sv.window(), 2);
    }

    #[test]
    fn training_reduces_loss_across_iterations() {
        let net = ratings_net();
        let views = net.views();
        let mut cfg = TransNConfig::for_tests();
        cfg.dim = 12;
        let mut sv = SingleView::new(views[0].clone(), &cfg, 0);
        let first = sv.train_iteration(&cfg, 0);
        let mut last = first;
        for it in 1..6 {
            last = sv.train_iteration(&cfg, it);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn clusters_separate_in_embedding_space() {
        let net = ratings_net();
        let views = net.views();
        let mut cfg = TransNConfig::for_tests();
        cfg.dim = 12;
        let mut sv = SingleView::new(views[0].clone(), &cfg, 0);
        for it in 0..8 {
            sv.train_iteration(&cfg, it);
        }
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        // Readers 0,1 same cluster; readers 0,4 different clusters.
        let v = &sv.view;
        let e0 = sv
            .model
            .embedding(v.local(transn_graph::NodeId(0)).unwrap());
        let e1 = sv
            .model
            .embedding(v.local(transn_graph::NodeId(1)).unwrap());
        let e4 = sv
            .model
            .embedding(v.local(transn_graph::NodeId(4)).unwrap());
        assert!(
            cos(e0, e1) > cos(e0, e4),
            "intra {} vs inter {}",
            cos(e0, e1),
            cos(e0, e4)
        );
    }

    #[test]
    fn episodic_pass_is_invariant_to_episode_size() {
        let net = ratings_net();
        let views = net.views();
        let run = |episode_walks: usize, in_flight: usize, threads: usize| {
            let mut cfg = TransNConfig::for_tests();
            cfg.episode.episode_walks = episode_walks;
            cfg.episode.episodes_in_flight = in_flight;
            cfg.parallelism = transn_sgns::Parallelism::strict(threads);
            let mut sv = SingleView::new(views[0].clone(), &cfg, 0);
            for it in 0..3 {
                let loss = sv.train_iteration(&cfg, it);
                assert!(loss.is_finite());
            }
            assert!(sv.peak_corpus_bytes() > 0);
            sv.model
                .input_table()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        // One giant episode (everything resident) is the monolithic
        // reference of the stream schedule.
        let reference = run(1_000_000, 1, 1);
        for (episode_walks, in_flight, threads) in [(1, 1, 1), (4, 2, 2), (9, 3, 4)] {
            assert_eq!(
                run(episode_walks, in_flight, threads),
                reference,
                "episode_walks={episode_walks} in_flight={in_flight} threads={threads}"
            );
        }
    }

    #[test]
    fn simple_walk_variant_also_trains() {
        let net = ratings_net();
        let views = net.views();
        let mut cfg = TransNConfig::for_tests();
        cfg.variant = Variant::SimpleWalk;
        let mut sv = SingleView::new(views[0].clone(), &cfg, 0);
        let loss = sv.train_iteration(&cfg, 0);
        assert!(loss > 0.0 && loss.is_finite());
    }
}
