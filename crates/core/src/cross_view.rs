//! The cross-view algorithm (§III-B): translating the embeddings of common
//! nodes between the two views of a view-pair with dual-learning
//! translation (T1/T2) and reconstruction (R1/R2) tasks.

use crate::config::TransNConfig;
use crate::single_view::SingleView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transn_graph::{PairedSubview, ViewPair};
use transn_nn::workspace::{FfWsCache, TranslatorWsCache, Workspace};
use transn_nn::{AdamConfig, FeedForward, Matrix, Translator, TranslatorCache};
use transn_sgns::RacyTable;
use transn_walks::{CorrelatedWalker, WalkConfig};

/// A shared, dimension-aware view of one view's input embedding table.
///
/// Wraps the table in a [`RacyTable`] so the parallel cross-view pass can
/// hand the *same* view table to several view-pair workers (Hogwild mode)
/// without locks; `gather_into`/`scatter` go through atomic bit-cast
/// loads/stores, which on the serial path compile to plain moves and are
/// bit-identical to direct slice access.
pub struct EmbSlot<'a> {
    table: RacyTable<'a>,
    dim: usize,
}

impl<'a> EmbSlot<'a> {
    /// Wrap a flat row-major `n × dim` embedding table.
    ///
    /// # Panics
    /// Panics if the table length is not a multiple of `dim`.
    pub fn new(table: &'a mut [f32], dim: usize) -> Self {
        assert!(dim > 0 && table.len() % dim == 0, "table/dim mismatch");
        EmbSlot {
            table: RacyTable::new(table),
            dim,
        }
    }

    /// Copy the embeddings of `locals` into `out` (`locals.len() × dim`,
    /// fully overwritten). Allocation-free.
    pub fn gather_into(&self, locals: &[u32], out: &mut Matrix) {
        assert_eq!(
            (out.rows(), out.cols()),
            (locals.len(), self.dim),
            "gather buffer shape mismatch"
        );
        for (r, &l) in locals.iter().enumerate() {
            let base = l as usize * self.dim;
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v = self.table.load(base + c);
            }
        }
    }

    /// SGD row update: `emb[l] ← emb[l] − lr · grad_row`. Repeated nodes in
    /// a segment accumulate naturally. Allocation-free.
    pub fn scatter(&self, locals: &[u32], grad: &Matrix, lr: f32) {
        assert_eq!(
            (grad.rows(), grad.cols()),
            (locals.len(), self.dim),
            "scatter gradient shape mismatch"
        );
        for (r, &l) in locals.iter().enumerate() {
            let base = l as usize * self.dim;
            for (c, &g) in grad.row(r).iter().enumerate() {
                let i = base + c;
                self.table.store(i, self.table.load(i) - lr * g);
            }
        }
    }
}

/// A translator `T` or its Table-V ablation (`TransN-With-Simple-Translator`
/// replaces the encoder stack with a single feed-forward layer).
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // two long-lived values per view-pair
pub enum CrossModel {
    /// The full stack of `H` encoders (Eq. 10).
    Stack(Translator),
    /// A single feed-forward layer (ablation).
    SingleFf(FeedForward),
}

/// Forward cache matching [`CrossModel`] (convenience tier; the training
/// hot path uses workspace handles instead).
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // short-lived, one per inference call
pub enum CrossCache {
    /// Cache of the encoder stack.
    Stack(TranslatorCache),
    /// Cache of the single feed-forward layer.
    SingleFf(transn_nn::layers::FfCache),
}

/// Workspace cache handle matching [`CrossModel`].
#[derive(Clone, Copy, Debug)]
enum CrossWsCache {
    Stack(TranslatorWsCache),
    SingleFf(FfWsCache),
}

impl CrossModel {
    fn new(cfg: &TransNConfig, rng: &mut StdRng) -> Self {
        if cfg.variant.uses_full_translator() {
            CrossModel::Stack(Translator::near_identity(cfg.encoders, cfg.cross_len, rng))
        } else {
            CrossModel::SingleFf(FeedForward::near_identity(cfg.cross_len, rng))
        }
    }

    /// Encoder-stack depth (1 for the single-feed-forward ablation); sizes
    /// the per-pair workspaces.
    fn depth(&self) -> usize {
        match self {
            CrossModel::Stack(t) => t.num_encoders(),
            CrossModel::SingleFf(_) => 1,
        }
    }

    /// Forward pass over an `L×d` matrix (convenience tier; allocates).
    pub fn forward(&self, a: &Matrix) -> (Matrix, CrossCache) {
        match self {
            CrossModel::Stack(t) => {
                let (out, cache) = t.forward(a);
                (out, CrossCache::Stack(cache))
            }
            CrossModel::SingleFf(ff) => {
                let (out, cache) = ff.forward(a);
                (out, CrossCache::SingleFf(cache))
            }
        }
    }

    /// Backward pass; accumulates parameter gradients and returns `∂L/∂A`.
    pub fn backward(&mut self, cache: &mut CrossCache, d_out: &Matrix) -> Matrix {
        match (self, cache) {
            (CrossModel::Stack(t), CrossCache::Stack(c)) => t.backward(c, d_out),
            (CrossModel::SingleFf(ff), CrossCache::SingleFf(c)) => ff.backward(c, d_out),
            _ => unreachable!("cache kind mismatch"),
        }
    }

    /// Workspace forward pass: activations cached in `ws`, output borrowed
    /// from the arena. Allocation-free once `ws` is sized.
    fn forward_ws<'w>(&self, a: &Matrix, ws: &'w mut Workspace) -> (&'w Matrix, CrossWsCache) {
        match self {
            CrossModel::Stack(t) => {
                let (out, cache) = t.forward_ws(a, ws);
                (out, CrossWsCache::Stack(cache))
            }
            CrossModel::SingleFf(ff) => {
                let (out, cache) = ff.forward_ws(a, ws);
                (out, CrossWsCache::SingleFf(cache))
            }
        }
    }

    /// Workspace backward pass; returns `∂L/∂A` borrowed from the arena.
    fn backward_ws<'w>(
        &mut self,
        cache: &CrossWsCache,
        d_out: &Matrix,
        ws: &'w mut Workspace,
    ) -> &'w Matrix {
        match (self, cache) {
            (CrossModel::Stack(t), CrossWsCache::Stack(c)) => t.backward_ws(c, d_out, ws),
            (CrossModel::SingleFf(ff), CrossWsCache::SingleFf(c)) => ff.backward_ws(c, d_out, ws),
            _ => unreachable!("cache kind mismatch"),
        }
    }

    /// Adam step over all parameters, clearing gradients.
    pub fn step(&mut self, cfg: &AdamConfig) {
        match self {
            CrossModel::Stack(t) => t.step_adam(cfg),
            CrossModel::SingleFf(ff) => {
                ff.w.step_adam(cfg);
                ff.b.step_adam(cfg);
            }
        }
    }
}

/// All scratch storage one [`CrossPair`] needs to train a segment without
/// heap allocation: one workspace per translator direction (the forward
/// stack's caches must survive the backward stack's forward/backward in
/// between) plus the `L×d` gather/gradient staging buffers.
#[derive(Debug)]
struct CrossWorkspace {
    /// Arena for whichever translator runs the T1/T2 (forward) direction.
    ws_fwd: Workspace,
    /// Arena for the reconstruction (backward) direction.
    ws_bwd: Workspace,
    /// Gathered source embeddings `A`.
    a: Matrix,
    /// Gathered target embeddings.
    target: Matrix,
    /// Accumulated gradient w.r.t. the translated matrix `X₁`.
    d_x1: Matrix,
    /// Accumulated gradient w.r.t. the source embeddings `A`.
    d_a: Matrix,
    /// Loss gradient w.r.t. its first operand.
    d_lx: Matrix,
    /// Loss gradient w.r.t. its second operand.
    d_lt: Matrix,
}

impl CrossWorkspace {
    fn new(depth: usize, len: usize, dim: usize) -> Self {
        CrossWorkspace {
            ws_fwd: Workspace::new(depth, len, dim),
            ws_bwd: Workspace::new(depth, len, dim),
            a: Matrix::zeros(len, dim),
            target: Matrix::zeros(len, dim),
            d_x1: Matrix::zeros(len, dim),
            d_a: Matrix::zeros(len, dim),
            d_lx: Matrix::zeros(len, dim),
            d_lt: Matrix::zeros(len, dim),
        }
    }
}

/// A training segment: a run of exactly `cross_len` common nodes from a
/// filtered path, resolved to local indices in both views.
#[derive(Clone, Debug)]
struct Segment {
    /// Local indices in the *source* view of the direction being trained.
    src: Vec<u32>,
    /// Local indices in the *target* view.
    dst: Vec<u32>,
}

/// All state attached to one view-pair `η_{i,j}`: the paired-subviews, the
/// two translators, and index maps from subview-local common nodes to each
/// view's local ids.
#[derive(Debug)]
pub struct CrossPair {
    /// Index of view `φ_i` in the trainer's view list.
    pub i: usize,
    /// Index of view `φ_j`.
    pub j: usize,
    sub_i: PairedSubview,
    sub_j: PairedSubview,
    t_ij: CrossModel,
    t_ji: CrossModel,
    /// Pre-sized scratch for allocation-free segment training.
    scratch: CrossWorkspace,
    /// For subview `φ'_i`, per sub-local node: `(view_i local, view_j
    /// local)` when the node is common, sentinel otherwise.
    map_i: Vec<(u32, u32)>,
    /// Same for subview `φ'_j` (still ordered `(view_i local, view_j
    /// local)`).
    map_j: Vec<(u32, u32)>,
    /// Sub-local ids of common nodes (walk start points).
    starts_i: Vec<u32>,
    starts_j: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl CrossPair {
    /// Build the cross-view state for a view-pair.
    pub fn new(pair: &ViewPair<'_>, i: usize, j: usize, cfg: &TransNConfig) -> Self {
        let (sub_i, sub_j) = PairedSubview::from_pair(pair);
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ ((i as u64) << 40) ^ ((j as u64) << 20) ^ 0xC0FFEE);
        let t_ij = CrossModel::new(cfg, &mut rng);
        let t_ji = CrossModel::new(cfg, &mut rng);

        let build_map = |sub: &PairedSubview| -> (Vec<(u32, u32)>, Vec<u32>) {
            let mut map = Vec::with_capacity(sub.view().num_nodes());
            let mut starts = Vec::new();
            for l in 0..sub.view().num_nodes() as u32 {
                if sub.is_common(l) {
                    let g = sub.view().global(l);
                    let vi = pair.vi.local(g).expect("common node in view i");
                    let vj = pair.vj.local(g).expect("common node in view j");
                    map.push((vi, vj));
                    starts.push(l);
                } else {
                    map.push((NONE, NONE));
                }
            }
            (map, starts)
        };
        let (map_i, starts_i) = build_map(&sub_i);
        let (map_j, starts_j) = build_map(&sub_j);
        let scratch = CrossWorkspace::new(t_ij.depth(), cfg.cross_len, cfg.dim);

        CrossPair {
            i,
            j,
            sub_i,
            sub_j,
            t_ij,
            t_ji,
            scratch,
            map_i,
            map_j,
            starts_i,
            starts_j,
        }
    }

    /// Number of common nodes between the pair's views.
    pub fn num_common(&self) -> usize {
        self.starts_i.len()
    }

    /// Translate an `L×d` embedding matrix from view `i`'s space to view
    /// `j`'s (inference helper; `L` must equal `cfg.cross_len`).
    pub fn translate_i_to_j(&self, a: &Matrix) -> Matrix {
        self.t_ij.forward(a).0
    }

    /// Translate from view `j`'s space to view `i`'s.
    pub fn translate_j_to_i(&self, a: &Matrix) -> Matrix {
        self.t_ji.forward(a).0
    }

    /// One iteration of the cross-view algorithm for this pair
    /// (Algorithm 1 lines 8–12), taking the two views directly. Convenience
    /// wrapper over [`CrossPair::train_iteration_slots`].
    pub fn train_iteration(
        &mut self,
        view_i: &mut SingleView,
        view_j: &mut SingleView,
        cfg: &TransNConfig,
        iteration: usize,
    ) -> f32 {
        let emb_i = EmbSlot::new(view_i.model.input_table_mut(), cfg.dim);
        let emb_j = EmbSlot::new(view_j.model.input_table_mut(), cfg.dim);
        self.train_iteration_slots(&emb_i, &emb_j, cfg, iteration)
    }

    /// One iteration of the cross-view algorithm for this pair
    /// (Algorithm 1 lines 8–12), against shared embedding-table views —
    /// the entry point the parallel cross-view pass uses, since several
    /// pairs may update the same view's table concurrently (Hogwild).
    /// Returns the mean segment loss, or 0 when the pair yields no
    /// trainable segments.
    ///
    /// After the first call everything past walk sampling — gather,
    /// translator forward/backward, loss, scatter, Adam — is
    /// allocation-free (see `crates/bench/tests/alloc_free.rs`).
    pub fn train_iteration_slots(
        &mut self,
        emb_i: &EmbSlot<'_>,
        emb_j: &EmbSlot<'_>,
        cfg: &TransNConfig,
        iteration: usize,
    ) -> f32 {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ ((self.i as u64) << 48) ^ ((self.j as u64) << 32) ^ (iteration as u64),
        );
        let walk_cfg = WalkConfig {
            seed: rng.random(),
            ..cfg.walk
        };
        let want = cfg.cross_paths;
        let segs_i = sample_segments(
            &self.sub_i,
            &self.map_i,
            &self.starts_i,
            &walk_cfg,
            cfg,
            want,
            &mut rng,
            false,
        );
        let segs_j = sample_segments(
            &self.sub_j,
            &self.map_j,
            &self.starts_j,
            &walk_cfg,
            cfg,
            want,
            &mut rng,
            true,
        );

        let adam = AdamConfig {
            lr: cfg.lr_cross,
            weight_decay: cfg.weight_decay,
            ..AdamConfig::default()
        };
        let mut total = 0.0f64;
        let mut count = 0usize;
        for seg in &segs_i {
            total += self.train_segment(seg, true, emb_i, emb_j, cfg, &adam) as f64;
            count += 1;
        }
        for seg in &segs_j {
            total += self.train_segment(seg, false, emb_j, emb_i, cfg, &adam) as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            (total / count as f64) as f32
        }
    }

    /// Train one segment in one direction, entirely inside the pair's
    /// scratch workspace.
    ///
    /// `forward_is_ij = true` trains tasks T1 + R1 on a path from `φ'_i`
    /// (`src_emb` = view i's table, translator `t_ij` forward, `t_ji`
    /// back); `false` trains T2 + R2 symmetrically.
    fn train_segment(
        &mut self,
        seg: &Segment,
        forward_is_ij: bool,
        src_emb: &EmbSlot<'_>,
        dst_emb: &EmbSlot<'_>,
        cfg: &TransNConfig,
        adam: &AdamConfig,
    ) -> f32 {
        let CrossPair {
            t_ij,
            t_ji,
            scratch: cw,
            ..
        } = self;
        src_emb.gather_into(&seg.src, &mut cw.a);
        dst_emb.gather_into(&seg.dst, &mut cw.target);

        let (fwd, bwd) = if forward_is_ij {
            (&mut *t_ij, &mut *t_ji)
        } else {
            (&mut *t_ji, &mut *t_ij)
        };

        let (x1, c1) = fwd.forward_ws(&cw.a, &mut cw.ws_fwd);
        cw.d_x1.fill_zero();
        cw.d_a.fill_zero();
        let mut loss = 0.0f32;

        // Translation task (Eq. 11/12): T(A) should match the target
        // view's embeddings of the same nodes.
        if cfg.variant.uses_translation_tasks() {
            loss += cfg
                .loss
                .eval_into(x1, &cw.target, &mut cw.d_lx, &mut cw.d_lt);
            cw.d_x1.add_assign(&cw.d_lx);
            dst_emb.scatter(&seg.dst, &cw.d_lt, cfg.lr_cross_emb);
        }

        // Reconstruction task (Eq. 13/14): translating back must recover A.
        if cfg.variant.uses_reconstruction_tasks() {
            let (x2, c2) = bwd.forward_ws(x1, &mut cw.ws_bwd);
            loss += cfg.loss.eval_into(x2, &cw.a, &mut cw.d_lx, &mut cw.d_lt);
            let d_back = bwd.backward_ws(&c2, &cw.d_lx, &mut cw.ws_bwd);
            cw.d_x1.add_assign(d_back);
            cw.d_a.add_assign(&cw.d_lt);
        }

        let d_from_fwd = fwd.backward_ws(&c1, &cw.d_x1, &mut cw.ws_fwd);
        cw.d_a.add_assign(d_from_fwd);
        src_emb.scatter(&seg.src, &cw.d_a, cfg.lr_cross_emb);

        fwd.step(adam);
        bwd.step(adam);
        loss
    }
}

/// Sample walks on a paired-subview, filter them to common nodes
/// (§III-B1), and chunk the result into segments of exactly
/// `cfg.cross_len`, resolved to `(src, dst)` view-local index lists.
#[allow(clippy::too_many_arguments)]
fn sample_segments(
    sub: &PairedSubview,
    map: &[(u32, u32)],
    starts: &[u32],
    walk_cfg: &WalkConfig,
    cfg: &TransNConfig,
    want: usize,
    rng: &mut StdRng,
    // When the subview belongs to φ'_j the *source* view is j, i.e. the
    // second entry of the map.
    src_is_second: bool,
) -> Vec<Segment> {
    let mut segments = Vec::new();
    if starts.is_empty() {
        return segments;
    }
    let walker = CorrelatedWalker::new(sub.view(), *walk_cfg);
    let max_walks = want * 3;
    let mut walks_done = 0usize;
    while segments.len() < want && walks_done < max_walks {
        let start = starts[rng.random_range(0..starts.len())];
        let walk = walker.walk_from(start, rng);
        walks_done += 1;
        let common = sub.filter_to_common(&walk);
        for chunk in common.chunks_exact(cfg.cross_len) {
            let mut src = Vec::with_capacity(cfg.cross_len);
            let mut dst = Vec::with_capacity(cfg.cross_len);
            for &l in chunk {
                let (vi, vj) = map[l as usize];
                debug_assert!(vi != NONE && vj != NONE);
                if src_is_second {
                    src.push(vj);
                    dst.push(vi);
                } else {
                    src.push(vi);
                    dst.push(vj);
                }
            }
            segments.push(Segment { src, dst });
            if segments.len() >= want {
                break;
            }
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use transn_graph::{HetNet, HetNetBuilder, NodeId};
    use transn_sgns::SgnsModel;

    /// Copy the embeddings of `locals` into an `L×d` matrix.
    fn gather(model: &SgnsModel, locals: &[u32], dim: usize) -> Matrix {
        let mut m = Matrix::zeros(locals.len(), dim);
        for (r, &l) in locals.iter().enumerate() {
            m.row_mut(r).copy_from_slice(model.embedding(l));
        }
        m
    }

    /// Two views over a shared set of "user" nodes: a friendship homo-view
    /// and a user–keyword heter-view, with correlated cluster structure.
    fn two_view_net() -> HetNet {
        let mut b = HetNetBuilder::new();
        let user = b.add_node_type("user");
        let kw = b.add_node_type("keyword");
        let uu = b.add_edge_type("friend", user, user);
        let uk = b.add_edge_type("uses", user, kw);
        let users: Vec<_> = (0..8).map(|_| b.add_node(user)).collect();
        let kws: Vec<_> = (0..4).map(|_| b.add_node(kw)).collect();
        // Two friend cliques: users 0–3, users 4–7.
        for c in 0..2 {
            for x in 0..4 {
                for y in (x + 1)..4 {
                    b.add_edge(users[c * 4 + x], users[c * 4 + y], uu, 1.0)
                        .unwrap();
                }
            }
        }
        // Bridge to keep things connected.
        b.add_edge(users[3], users[4], uu, 1.0).unwrap();
        // Cluster 1 uses keywords 0–1, cluster 2 uses keywords 2–3.
        for c in 0..2usize {
            for x in 0..4 {
                b.add_edge(users[c * 4 + x], kws[c * 2], uk, 2.0).unwrap();
                b.add_edge(users[c * 4 + x], kws[c * 2 + 1], uk, 1.0)
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    fn build_pair(net: &HetNet, cfg: &TransNConfig) -> (SingleView, SingleView, CrossPair) {
        let views = net.views();
        let pairs = net.view_pairs(&views);
        assert_eq!(pairs.len(), 1);
        let cp = CrossPair::new(&pairs[0], 0, 1, cfg);
        let sv0 = SingleView::new(views[0].clone(), cfg, 0);
        let sv1 = SingleView::new(views[1].clone(), cfg, 1);
        (sv0, sv1, cp)
    }

    #[test]
    fn common_nodes_are_the_users() {
        let net = two_view_net();
        let cfg = TransNConfig::for_tests();
        let (_, _, cp) = build_pair(&net, &cfg);
        assert_eq!(cp.num_common(), 8);
    }

    #[test]
    fn training_produces_finite_loss_and_updates_embeddings() {
        let net = two_view_net();
        let mut cfg = TransNConfig::for_tests();
        cfg.cross_len = 4;
        cfg.cross_paths = 30;
        let (mut sv0, mut sv1, mut cp) = build_pair(&net, &cfg);
        // Pre-train single views a little so embeddings are meaningful.
        for it in 0..2 {
            sv0.train_iteration(&cfg, it);
            sv1.train_iteration(&cfg, it);
        }
        let before0 = sv0.model.input_table().to_vec();
        let loss = cp.train_iteration(&mut sv0, &mut sv1, &cfg, 0);
        assert!(loss.is_finite(), "loss {loss}");
        assert_ne!(
            sv0.model.input_table(),
            &before0[..],
            "cross-view must update view-specific embeddings"
        );
    }

    #[test]
    fn cross_training_reduces_cross_loss() {
        let net = two_view_net();
        let mut cfg = TransNConfig::for_tests();
        cfg.cross_len = 4;
        cfg.cross_paths = 40;
        cfg.lr_cross = 0.02;
        let (mut sv0, mut sv1, mut cp) = build_pair(&net, &cfg);
        for it in 0..2 {
            sv0.train_iteration(&cfg, it);
            sv1.train_iteration(&cfg, it);
        }
        let first = cp.train_iteration(&mut sv0, &mut sv1, &cfg, 0);
        let mut last = first;
        for it in 1..8 {
            last = cp.train_iteration(&mut sv0, &mut sv1, &cfg, it);
        }
        assert!(last < first, "cross loss should fall: {first} -> {last}");
    }

    #[test]
    fn translation_aligns_views() {
        // After joint training, translating a user's view-0 embedding into
        // view 1 should be closer (cosine) to that user's own view-1
        // embedding than to a random other user's, on average.
        let net = two_view_net();
        let mut cfg = TransNConfig::for_tests();
        cfg.cross_len = 4;
        cfg.cross_paths = 60;
        cfg.dim = 12;
        let (mut sv0, mut sv1, mut cp) = build_pair(&net, &cfg);
        for it in 0..10 {
            sv0.train_iteration(&cfg, it);
            sv1.train_iteration(&cfg, it);
            cp.train_iteration(&mut sv0, &mut sv1, &cfg, it);
        }
        // Build one segment of 4 distinct users and translate it.
        let users: Vec<u32> = (0..4u32).collect();
        let v0 = &sv0.view;
        let v1 = &sv1.view;
        let src: Vec<u32> = users
            .iter()
            .map(|&u| v0.local(NodeId(u)).unwrap())
            .collect();
        let dst: Vec<u32> = users
            .iter()
            .map(|&u| v1.local(NodeId(u)).unwrap())
            .collect();
        let a = gather(&sv0.model, &src, cfg.dim);
        let translated = cp.translate_i_to_j(&a);
        let target = gather(&sv1.model, &dst, cfg.dim);

        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let mut own = 0.0;
        for r in 0..4 {
            own += cos(translated.row(r), target.row(r));
        }
        own /= 4.0;
        assert!(own.is_finite());
        // Weak but meaningful check: alignment above zero on average.
        assert!(own > 0.0, "mean translated-vs-own cosine {own}");
    }

    #[test]
    fn ablation_variants_train_without_panicking() {
        let net = two_view_net();
        for variant in [
            Variant::SimpleTranslator,
            Variant::WithoutTranslationTasks,
            Variant::WithoutReconstructionTasks,
        ] {
            let mut cfg = TransNConfig::for_tests();
            cfg.variant = variant;
            cfg.cross_len = 4;
            cfg.cross_paths = 10;
            let (mut sv0, mut sv1, mut cp) = build_pair(&net, &cfg);
            let loss = cp.train_iteration(&mut sv0, &mut sv1, &cfg, 0);
            assert!(loss.is_finite(), "{variant:?}: {loss}");
        }
    }

    #[test]
    fn pair_with_too_few_common_occurrences_yields_zero_loss() {
        // One shared node only, and a cross_len longer than the number of
        // times a test-length walk can revisit it: no segment can form.
        let mut b = HetNetBuilder::new();
        let t = b.add_node_type("t");
        let s = b.add_node_type("s");
        let e1 = b.add_edge_type("tt", t, t);
        let e2 = b.add_edge_type("ts", t, s);
        let c = b.add_node(t);
        let x = b.add_node(t);
        let y = b.add_node(s);
        b.add_edge(c, x, e1, 1.0).unwrap();
        b.add_edge(c, y, e2, 1.0).unwrap();
        let net = b.build().unwrap();
        let views = net.views();
        let pairs = net.view_pairs(&views);
        let mut cfg = TransNConfig::for_tests();
        // Walk length 12 alternating c-x-c-x… yields at most 6 common
        // occurrences; demand 8 so no chunk fills.
        cfg.cross_len = 8;
        let mut cp = CrossPair::new(&pairs[0], 0, 1, &cfg);
        let mut sv0 = SingleView::new(views[0].clone(), &cfg, 0);
        let mut sv1 = SingleView::new(views[1].clone(), &cfg, 1);
        let loss = cp.train_iteration(&mut sv0, &mut sv1, &cfg, 0);
        assert_eq!(loss, 0.0);
    }
}
