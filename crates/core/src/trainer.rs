//! The TransN training loop — Algorithm 1 of the paper.

use crate::config::TransNConfig;
use crate::cross_view::{CrossPair, EmbSlot};
use crate::fusion::fuse;
use crate::single_view::SingleView;
use transn_graph::{HetNet, NodeEmbeddings};

/// Per-iteration loss traces, for monitoring and tests.
#[derive(Clone, Debug, Default)]
pub struct TrainStats {
    /// `single_losses[iter][view]`: mean skip-gram loss.
    pub single_losses: Vec<Vec<f32>>,
    /// `cross_losses[iter][pair]`: mean translation+reconstruction loss.
    pub cross_losses: Vec<Vec<f32>>,
    /// Highest resident walk-corpus bytes held by any single view over the
    /// whole run — the episodic bounded-memory metric (DESIGN.md §13).
    /// Under the pipeline this stays at ~`episodes_in_flight` episode
    /// arenas per view no matter how large the walk corpus is.
    pub peak_corpus_bytes: usize,
}

/// The TransN trainer: owns the views, their embedding models, and the
/// per-view-pair translators.
///
/// Construction separates the network into views (Definition 2), pairs up
/// views sharing nodes (Definition 3), and reduces each pair to its
/// paired-subviews (Definition 5). [`TransN::train`] then runs Algorithm 1:
/// per iteration, one single-view pass per view (lines 3–7, parallel
/// across views) and one cross-view pass per view-pair (lines 8–12),
/// finishing with view-average fusion (lines 13–14).
pub struct TransN<'a> {
    net: &'a HetNet,
    cfg: TransNConfig,
    views: Vec<SingleView>,
    pairs: Vec<CrossPair>,
}

impl<'a> TransN<'a> {
    /// Set up views, view-pairs, models, and translators.
    ///
    /// # Panics
    /// Panics if the configuration is invalid
    /// (see [`TransNConfig::validate`]).
    pub fn new(net: &'a HetNet, cfg: TransNConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TransN configuration: {e}");
        }
        let raw_views = net.views();
        let pairs = if cfg.variant.uses_cross_view() {
            net.view_pairs(&raw_views)
                .iter()
                .map(|p| {
                    let i = p.vi.etype().index();
                    let j = p.vj.etype().index();
                    CrossPair::new(p, i, j, &cfg)
                })
                .collect()
        } else {
            Vec::new()
        };
        let views = raw_views
            .into_iter()
            .enumerate()
            .map(|(i, v)| SingleView::new(v, &cfg, i))
            .collect();
        TransN {
            net,
            cfg,
            views,
            pairs,
        }
    }

    /// Number of (possibly empty) views, `z = |C_E|`.
    pub fn num_views(&self) -> usize {
        self.views.len()
    }

    /// Number of view-pairs, `z'`.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &TransNConfig {
        &self.cfg
    }

    /// Run Algorithm 1 and return the fused embeddings.
    ///
    /// With `cfg.episode` enabled each single-view pass streams its walk
    /// epoch through the double-buffered episodic pipeline (DESIGN.md §13):
    /// the view trains episode `N` while a producer thread generates
    /// episode `N + 1`, so resident corpus memory stays at
    /// ~`episodes_in_flight` episode arenas per view instead of the full
    /// corpus. The cross-view pass stays per-iteration — it samples paths
    /// from the *network* (not the walk corpus), so episodes don't apply.
    pub fn train(self) -> NodeEmbeddings {
        self.train_with_stats().0
    }

    /// Run Algorithm 1, also returning per-iteration loss traces and the
    /// peak resident corpus footprint.
    pub fn train_with_stats(mut self) -> (NodeEmbeddings, TrainStats) {
        let mut stats = TrainStats::default();
        for iter in 0..self.cfg.iterations {
            stats.single_losses.push(self.single_view_pass(iter));
            stats.cross_losses.push(self.cross_view_pass(iter));
        }
        stats.peak_corpus_bytes = self
            .views
            .iter()
            .map(SingleView::peak_corpus_bytes)
            .max()
            .unwrap_or(0);
        let emb = fuse(self.net, &self.views, self.cfg.dim);
        (emb, stats)
    }

    /// Lines 3–7: one single-view iteration per view, in parallel (views
    /// own disjoint models, so this is safely data-race-free). Under the
    /// episodic pipeline each view additionally runs its own producer
    /// thread, overlapping walk generation with training.
    fn single_view_pass(&mut self, iter: usize) -> Vec<f32> {
        let cfg = &self.cfg;
        let mut losses = vec![0.0f32; self.views.len()];
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.views.len());
            for (sv, slot) in self.views.iter_mut().zip(losses.iter_mut()) {
                handles.push(scope.spawn(move |_| {
                    *slot = sv.train_iteration(cfg, iter);
                }));
            }
            for h in handles {
                h.join().expect("single-view worker panicked");
            }
        })
        .expect("single-view scope failed");
        losses
    }

    /// Lines 8–12: one cross-view iteration per view-pair, parallel across
    /// pairs under the same `Parallelism { threads, determinism }` model as
    /// the SGNS shards (DESIGN.md §8).
    ///
    /// Pairs own disjoint translators but may *share* a view's embedding
    /// table, so the parallel path hands every worker [`EmbSlot`] views
    /// (`RacyTable` atomics) over the shared tables — Hogwild semantics.
    /// `Determinism::Strict`, one thread, or ≤ 1 pair runs the plain
    /// ordered pair loop, which is bit-identical at any thread count.
    fn cross_view_pass(&mut self, iter: usize) -> Vec<f32> {
        let cfg = self.cfg;
        let par = cfg.parallelism;
        if par.is_sequential(self.pairs.len()) {
            let mut losses = Vec::with_capacity(self.pairs.len());
            for pair in &mut self.pairs {
                let (i, j) = (pair.i, pair.j);
                let (vi, vj) = two_mut(&mut self.views, i, j);
                losses.push(pair.train_iteration(vi, vj, &cfg, iter));
            }
            return losses;
        }

        // Hogwild: shared table views, worker t owns pairs t, t+threads, …
        // (the `run_shards` convention); losses are re-ordered by pair
        // index so the *returned* trace is thread-count-independent even
        // though table updates race.
        let dim = cfg.dim;
        let slots: Vec<EmbSlot<'_>> = self
            .views
            .iter_mut()
            .map(|sv| EmbSlot::new(sv.model.input_table_mut(), dim))
            .collect();
        let threads = par.threads.min(self.pairs.len());
        let mut buckets: Vec<Vec<(usize, &mut CrossPair)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (idx, pair) in self.pairs.iter_mut().enumerate() {
            buckets[idx % threads].push((idx, pair));
        }
        let slots = &slots;
        let mut indexed: Vec<(usize, f32)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|(idx, pair)| {
                                let loss = pair.train_iteration_slots(
                                    &slots[pair.i],
                                    &slots[pair.j],
                                    &cfg,
                                    iter,
                                );
                                (idx, loss)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("cross-view worker panicked"))
                .collect()
        })
        .expect("cross-view scope failed");
        indexed.sort_by_key(|&(idx, _)| idx);
        indexed.into_iter().map(|(_, l)| l).collect()
    }
}

/// Disjoint mutable borrows of two vector elements.
fn two_mut<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i != j, "view-pair must reference two distinct views");
    if i < j {
        let (lo, hi) = v.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use transn_graph::{HetNetBuilder, NodeId};

    /// Two-cluster network with three edge types (friend UU, uses UK,
    /// related KK), BLOG-shaped.
    fn blog_like_toy() -> transn_graph::HetNet {
        let mut b = HetNetBuilder::new();
        let user = b.add_node_type("user");
        let kw = b.add_node_type("keyword");
        let uu = b.add_edge_type("friend", user, user);
        let uk = b.add_edge_type("uses", user, kw);
        let kk = b.add_edge_type("related", kw, kw);
        let users: Vec<_> = (0..10).map(|_| b.add_node(user)).collect();
        let kws: Vec<_> = (0..6).map(|_| b.add_node(kw)).collect();
        for c in 0..2 {
            let base = c * 5;
            for x in 0..5 {
                for y in (x + 1)..5 {
                    if (x + y) % 2 == 0 {
                        b.add_edge(users[base + x], users[base + y], uu, 1.0)
                            .unwrap();
                    }
                }
                for k in 0..3 {
                    b.add_edge(users[base + x], kws[c * 3 + k], uk, 1.0 + k as f32)
                        .unwrap();
                }
            }
        }
        b.add_edge(users[4], users[5], uu, 1.0).unwrap();
        b.add_edge(kws[0], kws[1], kk, 1.0).unwrap();
        b.add_edge(kws[2], kws[3], kk, 1.0).unwrap();
        b.add_edge(kws[4], kws[5], kk, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn setup_counts_views_and_pairs() {
        let net = blog_like_toy();
        let t = TransN::new(&net, TransNConfig::for_tests());
        assert_eq!(t.num_views(), 3);
        // friend∩uses share users; uses∩related share keywords;
        // friend∩related share nothing.
        assert_eq!(t.num_pairs(), 2);
    }

    #[test]
    fn training_returns_full_embedding_table() {
        let net = blog_like_toy();
        let emb = TransN::new(&net, TransNConfig::for_tests()).train();
        assert_eq!(emb.num_nodes(), net.num_nodes());
        assert_eq!(emb.dim(), TransNConfig::for_tests().dim);
        // Every node participates in some view → non-zero embedding.
        for n in net.nodes() {
            let norm: f32 = emb.get(n).iter().map(|x| x * x).sum();
            assert!(norm > 0.0, "node {n} has a zero embedding");
        }
    }

    #[test]
    fn stats_have_expected_shape() {
        let net = blog_like_toy();
        let cfg = TransNConfig::for_tests();
        let (_, stats) = TransN::new(&net, cfg).train_with_stats();
        assert_eq!(stats.single_losses.len(), cfg.iterations);
        assert_eq!(stats.cross_losses.len(), cfg.iterations);
        assert_eq!(stats.single_losses[0].len(), 3);
        assert_eq!(stats.cross_losses[0].len(), 2);
        for row in &stats.single_losses {
            for &l in row {
                assert!(l.is_finite());
            }
        }
    }

    #[test]
    fn without_cross_view_skips_pairs() {
        let net = blog_like_toy();
        let cfg = TransNConfig::for_tests().with_variant(Variant::WithoutCrossView);
        let t = TransN::new(&net, cfg);
        assert_eq!(t.num_pairs(), 0);
        let (_, stats) = t.train_with_stats();
        assert!(stats.cross_losses.iter().all(Vec::is_empty));
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let net = blog_like_toy();
        let cfg = TransNConfig::for_tests();
        let a = TransN::new(&net, cfg).train();
        let b = TransN::new(&net, cfg).train();
        assert_eq!(a, b);
    }

    #[test]
    fn strict_training_is_bit_identical_across_thread_counts() {
        use transn_sgns::Parallelism;
        let net = blog_like_toy();
        let run = |par: Parallelism| {
            let mut cfg = TransNConfig::for_tests();
            cfg.parallelism = par;
            TransN::new(&net, cfg).train()
        };
        let base = run(Parallelism::strict(1));
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run(Parallelism::strict(threads)),
                base,
                "Strict must give identical embeddings at threads={threads}"
            );
        }
        // One Hogwild worker runs the same serial shard schedule.
        assert_eq!(run(Parallelism::hogwild(1)), base);
    }

    #[test]
    fn hogwild_multithreaded_cross_view_trains_sane_embeddings() {
        use transn_sgns::Parallelism;
        let net = blog_like_toy();
        let mut cfg = TransNConfig::for_tests();
        cfg.parallelism = Parallelism::hogwild(4);
        let (emb, stats) = TransN::new(&net, cfg).train_with_stats();
        assert_eq!(emb.num_nodes(), net.num_nodes());
        for n in net.nodes() {
            for v in emb.get(n) {
                assert!(v.is_finite(), "node {n} has a non-finite embedding");
            }
        }
        for row in &stats.cross_losses {
            assert_eq!(row.len(), 2, "both pairs must report a loss");
            for &l in row {
                assert!(l.is_finite());
            }
        }
    }

    #[test]
    fn episodic_strict_is_invariant_to_episode_size_and_threads() {
        use transn_sgns::Parallelism;
        let net = blog_like_toy();
        let run = |episode_walks: usize, in_flight: usize, threads: usize| {
            let mut cfg = TransNConfig::for_tests();
            cfg.episode.episode_walks = episode_walks;
            cfg.episode.episodes_in_flight = in_flight;
            cfg.parallelism = Parallelism::strict(threads);
            TransN::new(&net, cfg).train()
        };
        // One giant episode = the monolithic reference of the stream
        // schedule (every walk resident at once).
        let reference = run(1_000_000, 1, 1);
        for (episode_walks, in_flight, threads) in [(1, 1, 1), (3, 2, 2), (8, 2, 4), (16, 3, 8)] {
            assert_eq!(
                run(episode_walks, in_flight, threads),
                reference,
                "episode_walks={episode_walks} in_flight={in_flight} threads={threads}"
            );
        }
    }

    #[test]
    fn episodic_hogwild_trains_sane_embeddings_and_reports_peak_memory() {
        use transn_sgns::Parallelism;
        let net = blog_like_toy();
        let mut cfg = TransNConfig::for_tests();
        cfg.episode.episode_walks = 4;
        cfg.episode.episodes_in_flight = 2;
        cfg.parallelism = Parallelism::hogwild(4);
        let (emb, stats) = TransN::new(&net, cfg).train_with_stats();
        assert_eq!(emb.num_nodes(), net.num_nodes());
        for n in net.nodes() {
            let norm: f32 = emb.get(n).iter().map(|x| x * x).sum();
            assert!(norm > 0.0, "node {n} has a zero embedding");
        }
        assert!(stats.peak_corpus_bytes > 0);
        for row in &stats.single_losses {
            for &l in row {
                assert!(l.is_finite());
            }
        }
    }

    #[test]
    fn monolithic_stats_report_corpus_footprint() {
        let net = blog_like_toy();
        let (_, stats) = TransN::new(&net, TransNConfig::for_tests()).train_with_stats();
        assert!(stats.peak_corpus_bytes > 0);
    }

    #[test]
    fn different_seeds_give_different_embeddings() {
        let net = blog_like_toy();
        let a = TransN::new(&net, TransNConfig::for_tests().with_seed(1)).train();
        let b = TransN::new(&net, TransNConfig::for_tests().with_seed(2)).train();
        assert_ne!(a, b);
    }

    #[test]
    fn cluster_structure_survives_fusion() {
        let net = blog_like_toy();
        let mut cfg = TransNConfig::for_tests();
        cfg.iterations = 4;
        cfg.dim = 16;
        let emb = TransN::new(&net, cfg).train();
        // Same-cluster users closer than cross-cluster on average.
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for x in 0..10u32 {
            for y in (x + 1)..10u32 {
                let c = emb.cosine(NodeId(x), NodeId(y));
                if (x < 5) == (y < 5) {
                    intra += c;
                    n_intra += 1;
                } else {
                    inter += c;
                    n_inter += 1;
                }
            }
        }
        intra /= n_intra as f32;
        inter /= n_inter as f32;
        assert!(
            intra > inter,
            "intra-cluster cosine {intra} must beat inter {inter}"
        );
    }

    #[test]
    fn all_variants_train_end_to_end() {
        let net = blog_like_toy();
        for variant in Variant::all() {
            let cfg = TransNConfig::for_tests().with_variant(variant);
            let emb = TransN::new(&net, cfg).train();
            assert_eq!(emb.num_nodes(), net.num_nodes(), "{variant:?}");
            for v in emb.get(NodeId(0)) {
                assert!(v.is_finite(), "{variant:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid TransN configuration")]
    fn invalid_config_panics() {
        let net = blog_like_toy();
        let mut cfg = TransNConfig::for_tests();
        cfg.dim = 0;
        let _ = TransN::new(&net, cfg);
    }

    #[test]
    fn two_mut_returns_disjoint_elements() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = two_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic(expected = "distinct views")]
    fn two_mut_rejects_equal_indices() {
        let mut v = vec![1, 2];
        let _ = two_mut(&mut v, 1, 1);
    }
}
