//! TransN hyper-parameters.

use crate::ablation::Variant;
use transn_nn::LossKind;
use transn_sgns::Parallelism;
use transn_walks::{EpisodeConfig, WalkConfig};

/// Full configuration of the TransN training loop (Algorithm 1).
#[derive(Clone, Copy, Debug)]
pub struct TransNConfig {
    /// Embedding dimension `d` (the paper uses 128).
    pub dim: usize,
    /// Outer iterations `K` of Algorithm 1.
    pub iterations: usize,
    /// Walk parameters for the single-view algorithm (length `ρ`,
    /// degree-clamped walk counts, seed, threads).
    pub walk: WalkConfig,
    /// Negative samples per skip-gram pair (Eq. 3 estimator).
    pub negatives: usize,
    /// Single-view learning rate `γ_single` (paper: 0.025).
    pub lr_single: f32,
    /// Cross-view learning rate `γ_cross` for the translator parameters
    /// (Adam α).
    pub lr_cross: f32,
    /// SGD rate for the common-node embedding rows updated by the
    /// cross-view losses (`Θ_cross` in Algorithm 1). Cosine-loss row
    /// gradients are `O(1/(|λ|·‖x‖))`, two orders of magnitude below the
    /// skip-gram updates, so this rate is much larger than `lr_cross` to
    /// make the information transfer material (cf. Table V).
    pub lr_cross_emb: f32,
    /// Encoders per translator, `H` (the paper uses 6 following \[44\]).
    pub encoders: usize,
    /// Fixed cross-view path length `|λ|` after filtering to common nodes;
    /// filtered paths are chunked into segments of exactly this length
    /// (DESIGN.md §4.3).
    pub cross_len: usize,
    /// Path *pairs* sampled per view-pair per iteration (`T` in
    /// Algorithm 1 line 9).
    pub cross_paths: usize,
    /// Interpretation of the translation/reconstruction losses
    /// (DESIGN.md §4.2).
    pub loss: LossKind,
    /// Weight decay on translator parameters (needed to bound norms under
    /// `LossKind::NegDot`).
    pub weight_decay: f32,
    /// Which (ablation) variant to train — [`Variant::Full`] is TransN.
    pub variant: Variant,
    /// Master seed for model initialization; walk seeds derive from
    /// `walk.seed`.
    pub seed: u64,
    /// Thread count and determinism policy for sharded skip-gram training
    /// (see DESIGN.md, "Threading & determinism model").
    pub parallelism: Parallelism,
    /// Episodic pipeline: split each walk epoch into bounded episodes and
    /// double-buffer generation against training (DESIGN.md §13). Disabled
    /// (`episode_walks = 0`) trains the legacy monolithic schedule.
    pub episode: EpisodeConfig,
}

impl Default for TransNConfig {
    /// Scaled defaults used by the experiment harness: paper protocol,
    /// smaller budget (see DESIGN.md §4.4).
    fn default() -> Self {
        TransNConfig {
            dim: 64,
            iterations: 5,
            walk: WalkConfig {
                length: 40,
                min_walks_per_node: 4,
                max_walks_per_node: 12,
                seed: 42,
                threads: 4,
            },
            negatives: 5,
            lr_single: 0.025,
            lr_cross: 0.01,
            lr_cross_emb: 0.5,
            encoders: 2,
            cross_len: 8,
            cross_paths: 200,
            loss: LossKind::Cosine,
            weight_decay: 1e-4,
            variant: Variant::Full,
            seed: 1234,
            parallelism: Parallelism::default(),
            episode: EpisodeConfig::default(),
        }
    }
}

impl TransNConfig {
    /// The paper's §IV-A3 settings: d = 128, walk length 80, walks per
    /// node `clamp(deg, 10, 32)`, H = 6 encoders, initial rate 0.025.
    pub fn paper() -> Self {
        TransNConfig {
            dim: 128,
            iterations: 10,
            walk: WalkConfig::default(),
            negatives: 5,
            lr_single: 0.025,
            lr_cross: 0.0025,
            lr_cross_emb: 0.5,
            encoders: 6,
            cross_len: 8,
            cross_paths: 1000,
            loss: LossKind::Cosine,
            weight_decay: 1e-4,
            variant: Variant::Full,
            seed: 1234,
            parallelism: Parallelism::default(),
            episode: EpisodeConfig::default(),
        }
    }

    /// Tiny settings for unit tests.
    pub fn for_tests() -> Self {
        TransNConfig {
            dim: 16,
            iterations: 2,
            walk: WalkConfig::for_tests(),
            negatives: 3,
            lr_single: 0.05,
            lr_cross: 0.01,
            lr_cross_emb: 0.5,
            encoders: 1,
            cross_len: 4,
            cross_paths: 20,
            loss: LossKind::Cosine,
            weight_decay: 1e-4,
            variant: Variant::Full,
            seed: 7,
            parallelism: Parallelism::default(),
            episode: EpisodeConfig::default(),
        }
    }

    /// Derive the same config with a different variant (ablation sweeps).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Derive the same config with a different seed (repeated runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.walk.seed = seed ^ 0xDEAD_BEEF;
        self
    }

    /// Basic sanity checks; called by the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.cross_len < 2 {
            return Err("cross_len must be at least 2".into());
        }
        if self.encoders == 0 {
            return Err("encoders must be at least 1".into());
        }
        if self.walk.length < 2 {
            return Err("walk length must be at least 2".into());
        }
        if !(self.lr_single > 0.0 && self.lr_cross > 0.0 && self.lr_cross_emb > 0.0) {
            return Err("learning rates must be positive".into());
        }
        if self.parallelism.threads == 0 {
            return Err("parallelism.threads must be at least 1".into());
        }
        self.episode.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_match_section_4a3() {
        let c = TransNConfig::paper();
        assert_eq!(c.dim, 128);
        assert_eq!(c.walk.length, 80);
        assert_eq!(c.walk.min_walks_per_node, 10);
        assert_eq!(c.walk.max_walks_per_node, 32);
        assert_eq!(c.encoders, 6);
        assert_eq!(c.lr_single, 0.025);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(TransNConfig::default().validate().is_ok());
        let mut c = TransNConfig::for_tests();
        c.dim = 0;
        assert!(c.validate().is_err());
        let mut c = TransNConfig::for_tests();
        c.cross_len = 1;
        assert!(c.validate().is_err());
        let mut c = TransNConfig::for_tests();
        c.encoders = 0;
        assert!(c.validate().is_err());
        let mut c = TransNConfig::for_tests();
        c.lr_cross = 0.0;
        assert!(c.validate().is_err());
        let mut c = TransNConfig::for_tests();
        c.parallelism.threads = 0;
        assert!(c.validate().is_err());
        let mut c = TransNConfig::for_tests();
        c.episode.episodes_in_flight = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_seed_changes_walk_seed_too() {
        let a = TransNConfig::for_tests().with_seed(1);
        let b = TransNConfig::for_tests().with_seed(2);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.walk.seed, b.walk.seed);
    }
}
