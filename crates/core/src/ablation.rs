//! The degenerate TransN variants of the Table V ablation study.

use serde::{Deserialize, Serialize};

/// Which variant of TransN to train. `Full` is the complete framework;
/// the rest remove one component each, matching Table V of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// The complete framework.
    Full,
    /// `TransN-Without-Cross-View`: Algorithm 1 without lines 8–12 (no
    /// information transfer between views).
    WithoutCrossView,
    /// `TransN-With-Simple-Walk`: uniform weight-blind walks with random
    /// starts feed the single-view algorithm.
    SimpleWalk,
    /// `TransN-With-Simple-Translator`: each translator is a single
    /// feed-forward layer (no self-attention, no stacking).
    SimpleTranslator,
    /// `TransN-Without-Translation-Tasks`: only reconstruction losses
    /// (Eqs. 13–14) in the cross-view algorithm.
    WithoutTranslationTasks,
    /// `TransN-Without-Reconstruction-Tasks`: only translation losses
    /// (Eqs. 11–12) in the cross-view algorithm.
    WithoutReconstructionTasks,
}

impl Variant {
    /// All six variants in Table V order.
    pub fn all() -> [Variant; 6] {
        [
            Variant::WithoutCrossView,
            Variant::SimpleWalk,
            Variant::SimpleTranslator,
            Variant::WithoutTranslationTasks,
            Variant::WithoutReconstructionTasks,
            Variant::Full,
        ]
    }

    /// The row label used in Table V.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "TransN",
            Variant::WithoutCrossView => "TransN-Without-Cross-View",
            Variant::SimpleWalk => "TransN-With-Simple-Walk",
            Variant::SimpleTranslator => "TransN-With-Simple-Translator",
            Variant::WithoutTranslationTasks => "TransN-Without-Translation-Tasks",
            Variant::WithoutReconstructionTasks => "TransN-Without-Reconstruction-Tasks",
        }
    }

    /// Whether this variant runs the cross-view algorithm at all.
    pub fn uses_cross_view(self) -> bool {
        self != Variant::WithoutCrossView
    }

    /// Whether single-view walks are the biased correlated walks (Eq. 4)
    /// or plain uniform walks.
    pub fn uses_biased_walks(self) -> bool {
        self != Variant::SimpleWalk
    }

    /// Whether translators are full encoder stacks or a single
    /// feed-forward layer.
    pub fn uses_full_translator(self) -> bool {
        self != Variant::SimpleTranslator
    }

    /// Whether the translation tasks T1/T2 contribute to `L_cross`.
    pub fn uses_translation_tasks(self) -> bool {
        self != Variant::WithoutTranslationTasks
    }

    /// Whether the reconstruction tasks R1/R2 contribute to `L_cross`.
    pub fn uses_reconstruction_tasks(self) -> bool {
        self != Variant::WithoutReconstructionTasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_uses_everything() {
        let v = Variant::Full;
        assert!(v.uses_cross_view());
        assert!(v.uses_biased_walks());
        assert!(v.uses_full_translator());
        assert!(v.uses_translation_tasks());
        assert!(v.uses_reconstruction_tasks());
    }

    #[test]
    fn each_ablation_removes_exactly_one_component() {
        for v in Variant::all() {
            let removed = [
                !v.uses_cross_view(),
                !v.uses_biased_walks(),
                !v.uses_full_translator(),
                !v.uses_translation_tasks(),
                !v.uses_reconstruction_tasks(),
            ]
            .iter()
            .filter(|&&x| x)
            .count();
            let expect = if v == Variant::Full { 0 } else { 1 };
            assert_eq!(removed, expect, "{v:?}");
        }
    }

    #[test]
    fn labels_match_table_v() {
        assert_eq!(Variant::Full.label(), "TransN");
        assert_eq!(
            Variant::WithoutCrossView.label(),
            "TransN-Without-Cross-View"
        );
        assert_eq!(Variant::all().len(), 6);
    }
}
