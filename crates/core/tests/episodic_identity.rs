//! Release-grade episodic bit-identity sweep (ISSUE 7).
//!
//! The episodic pipeline's contract (DESIGN.md §13): under Strict
//! determinism, training with bounded episodes is **bit-identical** to the
//! monolithic stream-schedule run — one giant episode holding the whole
//! corpus — for every episode size, every `episodes_in_flight`, and every
//! thread count. The in-crate unit tests pin this on toy inputs; this
//! integration test sweeps a synthetic BLOG-shaped network large enough
//! for multi-episode plans in every view, and CI runs it in `--release`
//! so the optimizer (vectorized f32 math, inlined RNG) is covered too.

use transn::{EpisodeConfig, Parallelism, TransN, TransNConfig};
use transn_graph::NodeId;
use transn_synth::{blog_like, BlogConfig};

/// FNV-1a 64 over the bit patterns of every fused embedding coordinate.
fn fingerprint(episode: EpisodeConfig, threads: usize) -> u64 {
    let ds = blog_like(&BlogConfig::tiny(), 11);
    let mut cfg = TransNConfig::for_tests();
    cfg.iterations = 2;
    cfg.parallelism = Parallelism::strict(threads);
    cfg.walk.threads = threads;
    cfg.episode = episode;
    let emb = TransN::new(&ds.net, cfg).train();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for n in 0..ds.net.num_nodes() as u32 {
        for &v in emb.get(NodeId(n)) {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[test]
fn strict_episodic_is_bit_identical_across_episode_sizes_and_threads() {
    // One giant episode, serial, single arena: the monolithic reference.
    let reference = fingerprint(
        EpisodeConfig {
            episode_walks: usize::MAX,
            episodes_in_flight: 1,
        },
        1,
    );
    for episode_walks in [1usize, 16, 256] {
        for in_flight in [1usize, 2, 3] {
            for threads in [1usize, 2, 4] {
                let episode = EpisodeConfig {
                    episode_walks,
                    episodes_in_flight: in_flight,
                };
                assert_eq!(
                    fingerprint(episode, threads),
                    reference,
                    "episode_walks={episode_walks} in_flight={in_flight} threads={threads}"
                );
            }
        }
    }
}
