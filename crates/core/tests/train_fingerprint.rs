//! End-to-end train fingerprint pinned across corpus-representation
//! changes (ISSUE 4).
//!
//! The golden constant below was captured with the pre-refactor *nested*
//! `Vec<Vec<u32>>` walk corpus. The flat-arena corpus must reproduce the
//! fused embedding table bit-for-bit: walk generation draws the same RNG
//! streams per task, walks concatenate in the same task order, and the
//! SGNS shard schedule (`w % num_shards`) sees the same walk sequence —
//! so any divergence in this hash means the representation change leaked
//! into the numerics.

use transn::{TransN, TransNConfig};
use transn_graph::{HetNetBuilder, NodeId};
use transn_sgns::Parallelism;

/// Two-cluster BLOG-shaped network: users with friend (UU) edges, keywords
/// with related (KK) edges, weighted uses (UK) edges — three views, two
/// view-pairs, both Def.-6 window kinds exercised.
fn blog_like_toy() -> transn_graph::HetNet {
    let mut b = HetNetBuilder::new();
    let user = b.add_node_type("user");
    let kw = b.add_node_type("keyword");
    let uu = b.add_edge_type("friend", user, user);
    let uk = b.add_edge_type("uses", user, kw);
    let kk = b.add_edge_type("related", kw, kw);
    let users: Vec<_> = (0..10).map(|_| b.add_node(user)).collect();
    let kws: Vec<_> = (0..6).map(|_| b.add_node(kw)).collect();
    for c in 0..2 {
        let base = c * 5;
        for x in 0..5 {
            for y in (x + 1)..5 {
                if (x + y) % 2 == 0 {
                    b.add_edge(users[base + x], users[base + y], uu, 1.0)
                        .unwrap();
                }
            }
            for k in 0..3 {
                b.add_edge(users[base + x], kws[c * 3 + k], uk, 1.0 + k as f32)
                    .unwrap();
            }
        }
    }
    b.add_edge(users[4], users[5], uu, 1.0).unwrap();
    b.add_edge(kws[0], kws[1], kk, 1.0).unwrap();
    b.add_edge(kws[2], kws[3], kk, 1.0).unwrap();
    b.add_edge(kws[4], kws[5], kk, 1.0).unwrap();
    b.build().unwrap()
}

/// FNV-1a 64 over the bit patterns of every fused embedding coordinate.
fn fingerprint(par: Parallelism) -> u64 {
    let net = blog_like_toy();
    let mut cfg = TransNConfig::for_tests();
    cfg.parallelism = par;
    let emb = TransN::new(&net, cfg).train();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for n in 0..net.num_nodes() as u32 {
        for &v in emb.get(NodeId(n)) {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Captured with the nested `Vec<Vec<u32>>` corpus at commit df0fe66
/// (pre-flat-arena). See module docs.
const NESTED_CORPUS_FINGERPRINT: u64 = 0x70F0_A717_DCA8_5962;

#[test]
fn train_fingerprint_matches_nested_corpus_golden() {
    assert_eq!(
        fingerprint(Parallelism::strict(1)),
        NESTED_CORPUS_FINGERPRINT,
        "end-to-end embeddings diverged from the pre-refactor nested-corpus run"
    );
}

#[test]
fn train_fingerprint_is_thread_count_invariant() {
    for threads in [2usize, 4, 8] {
        assert_eq!(
            fingerprint(Parallelism::strict(threads)),
            NESTED_CORPUS_FINGERPRINT,
            "strict fingerprint must not depend on thread count (threads={threads})"
        );
    }
}
