#!/usr/bin/env bash
# Record the perf trajectory in-repo: run the self-timing snapshot binaries
# and write BENCH_kernels.json (ISSUE 3, kernel layer), BENCH_walks.json
# (ISSUE 4, flat walk-corpus arena), BENCH_serve.json (ISSUE 6, serving
# layer), and BENCH_pipeline.json (ISSUE 7, episodic training pipeline at
# the 100× out-of-core scale — the slow one, ~tens of minutes) at the repo
# root.
#
# The JSON comes from self-timing binaries (plain Instant-based timing, no
# criterion dependency), so it works in offline environments where the
# criterion harness is stubbed. When real criterion is available the
# quick-mode bench runs give the statistical cross-check on the same
# comparisons (target/criterion/**/estimates.json).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"
WALKS_OUT="${2:-BENCH_walks.json}"
SERVE_OUT="${3:-BENCH_serve.json}"
PIPELINE_OUT="${4:-BENCH_pipeline.json}"
SCALE_OUT="${5:-BENCH_scale.json}"

cargo run --release -p transn-bench --bin kernel_snapshot -- "$OUT"
cargo run --release -p transn-bench --bin walks_snapshot -- "$WALKS_OUT"
cargo run --release -p transn-bench --bin query_snapshot -- "$SERVE_OUT"
cargo run --release -p transn-bench --bin pipeline_snapshot -- "$PIPELINE_OUT"
# ISSUE 8: million-node scale path (setup / logreg-eval / full-pipeline
# tiers at 40k, 400k, 1M, and 4M nodes — the slowest snapshot by far).
cargo run --release -p transn-bench --bin scale_snapshot -- "$SCALE_OUT"

# Best-effort criterion pass (quick mode); harmless no-op with the offline
# criterion stub, which runs each closure once without timing.
cargo bench -p transn-bench --bench matrix -- --quick 2>/dev/null || true
cargo bench -p transn-bench --bench walks -- --quick 2>/dev/null || true

echo "snapshots written to $OUT, $WALKS_OUT, $SERVE_OUT, $PIPELINE_OUT, and $SCALE_OUT"
