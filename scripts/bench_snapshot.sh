#!/usr/bin/env bash
# Record the kernel-layer perf trajectory (ISSUE 3): run the micro-bench
# suite in quick mode and write BENCH_kernels.json at the repo root.
#
# The JSON itself comes from the self-timing `kernel_snapshot` binary
# (plain Instant-based timing, no criterion dependency), so it works in
# offline environments where the criterion harness is stubbed. When real
# criterion is available the quick-mode bench run gives the statistical
# cross-check on the same comparisons (target/criterion/**/estimates.json).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_kernels.json}"

cargo run --release -p transn-bench --bin kernel_snapshot -- "$OUT"

# Best-effort criterion pass (quick mode); harmless no-op with the offline
# criterion stub, which runs each closure once without timing.
cargo bench -p transn-bench --bench matrix -- --quick 2>/dev/null || true

echo "snapshot written to $OUT"
