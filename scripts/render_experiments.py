#!/usr/bin/env python3
"""Append the measured grids from an `expt all` log to EXPERIMENTS.md.

Usage: python3 scripts/render_experiments.py expt_full.log
"""
import re
import sys
from pathlib import Path

log = Path(sys.argv[1] if len(sys.argv) > 1 else "expt_full.log").read_text()

sections = []
# Grab each printed grid verbatim (they start with '== ' and run until a
# blank line followed by a non-table line).
for m in re.finditer(r"^== .*?(?=^\[artifact\]|\Z)", log, re.S | re.M):
    sections.append(m.group(0).rstrip())

out = ["\n---\n\n## Measured output (verbatim harness grids)\n"]
for s in sections:
    out.append("```text")
    out.append(s)
    out.append("```")
    out.append("")

md = Path("EXPERIMENTS.md")
text = md.read_text()
marker = "## Measured output (verbatim harness grids)"
if marker in text:
    text = text[: text.index("\n---\n\n" + marker)]
md.write_text(text + "\n".join(out) + "\n")
print(f"appended {len(sections)} grids to EXPERIMENTS.md")
